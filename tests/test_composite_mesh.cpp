// Distributed composite-event oracle: a composite subscription must produce
// the identical firing multiset on a 1-node broker (the reference) and on
// line/star/tree meshes in every routing mode — and its decomposed primitive
// profiles must route across links exactly like plain subscriptions, so in
// the covered/routing modes only matching primitive events cross links
// (asserted against an OverlayNetwork holding the decomposed leaves).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "ens/broker.hpp"
#include "mesh/mesh.hpp"
#include "mesh/topology.hpp"
#include "net/overlay.hpp"
#include "profile/parser.hpp"
#include "profile/profile.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

using mesh::MeshNetwork;
using mesh::MeshOptions;
using net::NodeId;
using net::OverlayNetwork;
using net::OverlayOptions;
using net::RoutingMode;

/// (subscription index, firing time) multiset, thread-safe.
class FiringLog {
 public:
  void record(std::size_t index, Timestamp time) {
    const std::scoped_lock lock(mutex_);
    entries_.emplace_back(index, time);
  }
  std::vector<std::pair<std::size_t, Timestamp>> sorted() const {
    std::vector<std::pair<std::size_t, Timestamp>> copy;
    {
      const std::scoped_lock lock(mutex_);
      copy = entries_;
    }
    std::sort(copy.begin(), copy.end());
    return copy;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::size_t, Timestamp>> entries_;
};

struct Topology {
  std::string name;
  std::size_t nodes;
  std::vector<std::pair<NodeId, NodeId>> links;
};

std::vector<Topology> oracle_topologies() {
  return {
      {"line4", 4, {{0, 1}, {1, 2}, {2, 3}}},
      {"star5", 5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}},
      {"tree7", 7, {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}}},
  };
}

/// Composite subscriptions exercising every operator, with overlapping
/// range leaves so covering relations occur between decomposed profiles.
std::vector<std::string> oracle_composites() {
  return {
      "seq({temperature >= 35}, {humidity >= 90}, w=40)",
      "conj({temperature >= 20}, {radiation >= 50}, w=60)",
      "disj({temperature >= 40}, {humidity >= 95})",
      "neg({radiation >= 80}, {temperature >= 30}, w=25)",
      "seq(disj({temperature >= 35}, {temperature <= -10}), {radiation >= 40},"
      " w=50)",
      "conj({humidity >= 50}, {humidity >= 80}, w=30)",
  };
}

/// Deterministic event stream with unique timestamps.
std::vector<Event> oracle_events(const SchemaPtr& schema) {
  std::vector<Event> events;
  for (std::int64_t i = 0; i < 160; ++i) {
    Event event = Event::from_pairs(
        schema, {{"temperature", (i * 13) % 81 - 30},
                 {"humidity", (i * 29) % 101},
                 {"radiation", (i * 17) % 100 + 1}});
    event.set_time(static_cast<Timestamp>(i));
    events.push_back(std::move(event));
  }
  return events;
}

constexpr Timestamp kOracleSkew = 1 << 20;  // buffer everything until flush

/// The 1-node reference: every composite on one broker, events in
/// publication order, one flush at the end.
std::vector<std::pair<std::size_t, Timestamp>> reference_firings(
    const SchemaPtr& schema, const std::vector<std::string>& composites,
    const std::vector<Event>& events) {
  Broker broker(schema);
  broker.set_composite_skew(kOracleSkew);
  FiringLog log;
  for (std::size_t i = 0; i < composites.size(); ++i) {
    broker.subscribe_composite(
        composites[i],
        [&log, i](const CompositeFiring& f) { log.record(i, f.time); });
  }
  for (const Event& event : events) broker.publish(event);
  broker.flush_composites();
  return log.sorted();
}

TEST(CompositeMeshOracle, FiresIdenticallyOnBrokerAndAllTopologies) {
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<std::string> composites = oracle_composites();
  const std::vector<Event> events = oracle_events(schema);
  const auto expected = reference_firings(schema, composites, events);
  ASSERT_FALSE(expected.empty());  // the workload must exercise detection

  for (const Topology& topology : oracle_topologies()) {
    for (const RoutingMode mode :
         {RoutingMode::kRouting, RoutingMode::kRoutingCovered,
          RoutingMode::kFlooding}) {
      const std::string context =
          topology.name + "/" + std::string(net::to_string(mode));

      MeshOptions options;
      options.mode = mode;
      options.composite_skew = kOracleSkew;
      MeshNetwork mesh(schema, options);
      for (std::size_t n = 0; n < topology.nodes; ++n) mesh.add_node();
      for (const auto& [a, b] : topology.links) mesh.connect(a, b);
      mesh.start();

      // The overlay reference for link traffic: the decomposed primitive
      // profiles as plain subscriptions at the same nodes, same order.
      OverlayOptions overlay_options;
      overlay_options.mode = mode;
      OverlayNetwork overlay(schema, overlay_options);
      for (std::size_t n = 0; n < topology.nodes; ++n) overlay.add_broker();
      for (const auto& [a, b] : topology.links) overlay.connect(a, b);

      FiringLog log;
      // Decomposed-leaf propagation is refcount-deduped per node by profile
      // equality, so the overlay reference holds one plain subscription per
      // *distinct* leaf profile per node — the set the mesh routes.
      std::vector<std::set<std::string>> overlay_leaves(topology.nodes);
      for (std::size_t i = 0; i < composites.size(); ++i) {
        const NodeId at = i % topology.nodes;
        mesh.subscribe_composite(
            at, composites[i],
            [&log, i](NodeId, SubscriptionId, Timestamp time) {
              log.record(i, time);
            });
        mesh.wait_idle();  // serialize propagation (covering is
                           // install-order sensitive)
        const CompositeExprPtr expr = parse_composite(schema, composites[i]);
        for (const CompositeExpr* leaf : leaf_nodes(*expr)) {
          if (!overlay_leaves[at]
                   .insert(canonical_profile_key(*leaf->leaf_profile()))
                   .second) {
            continue;  // equal profile already registered at this node
          }
          overlay.subscribe(at, *leaf->leaf_profile());
        }
      }

      // Decomposed-leaf routing state is exactly the overlay's.
      for (std::size_t n = 0; n < topology.nodes; ++n) {
        EXPECT_EQ(mesh.routing_entries(n), overlay.routing_entries(n))
            << context << " node " << n;
      }

      for (std::size_t i = 0; i < events.size(); ++i) {
        overlay.publish(i % topology.nodes, events[i]);
        mesh.publish(i % topology.nodes, events[i]);
      }
      mesh.wait_idle();
      mesh.flush_composites();

      // The tentpole assertion: identical firing multiset everywhere.
      EXPECT_EQ(log.sorted(), expected) << context;

      // Only primitive events matching a decomposed leaf cross links (the
      // overlay forwards exactly those); in flooding both cross every link.
      EXPECT_EQ(mesh.stats().event_messages, overlay.stats().event_messages)
          << context;
      EXPECT_EQ(mesh.stats().profile_messages,
                overlay.stats().profile_messages)
          << context;
      // Leaf deliveries at the detection nodes agree with the overlay's
      // plain-subscription deliveries.
      EXPECT_EQ(mesh.stats().deliveries, overlay.stats().deliveries)
          << context;

      mesh.shutdown();
      EXPECT_EQ(mesh.first_error(), "") << context;
    }
  }
}

class CompositeMeshTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();

  Event make_event(std::int64_t t, std::int64_t h, std::int64_t r,
                   Timestamp time) {
    Event event = Event::from_pairs(
        schema_, {{"temperature", t}, {"humidity", h}, {"radiation", r}});
    event.set_time(time);
    return event;
  }

  std::unique_ptr<MeshNetwork> make_line(RoutingMode mode) {
    MeshOptions options;
    options.mode = mode;
    auto mesh = std::make_unique<MeshNetwork>(schema_, options);
    for (int i = 0; i < 4; ++i) mesh->add_node();
    mesh->connect(0, 1);
    mesh->connect(1, 2);
    mesh->connect(2, 3);
    mesh->start();
    return mesh;
  }
};

TEST_F(CompositeMeshTest, NonMatchingPrimitivesNeverCrossLinks) {
  // Covered mode: events matching no decomposed leaf stay at their node.
  const auto net = make_line(RoutingMode::kRoutingCovered);
  MeshNetwork& mesh = *net;
  std::atomic<std::uint64_t> firings{0};
  mesh.subscribe_composite(
      3, "seq({temperature >= 45}, {humidity >= 95}, w=10)",
      [&](NodeId, SubscriptionId, Timestamp) {
        firings.fetch_add(1, std::memory_order_relaxed);
      });
  mesh.wait_idle();
  EXPECT_EQ(mesh.routing_entries(0), 2u);  // both leaves installed toward 3

  for (int i = 0; i < 50; ++i) {
    mesh.publish(0, make_event(0, 50, 1, i));  // matches neither leaf
  }
  mesh.wait_idle();
  EXPECT_EQ(mesh.stats().event_messages, 0u);

  mesh.publish(0, make_event(48, 0, 1, 100));   // matches the seq's A leaf
  mesh.publish(0, make_event(0, 98, 1, 101));   // matches the seq's B leaf
  mesh.wait_idle();
  mesh.flush_composites();
  EXPECT_EQ(mesh.stats().event_messages, 6u);  // 2 events x 3 line hops
  EXPECT_EQ(firings.load(), 1u);
  mesh.shutdown();
  EXPECT_EQ(mesh.first_error(), "");
}

TEST_F(CompositeMeshTest, UnsubscribeRetractsDecomposedLeaves) {
  const auto net = make_line(RoutingMode::kRoutingCovered);
  MeshNetwork& mesh = *net;
  std::atomic<std::uint64_t> firings{0};
  const SubscriptionId key = mesh.subscribe_composite(
      3, "conj({temperature >= 30}, {humidity >= 80}, w=20)",
      [&](NodeId, SubscriptionId, Timestamp) {
        firings.fetch_add(1, std::memory_order_relaxed);
      });
  mesh.wait_idle();
  EXPECT_EQ(mesh.routing_entries(0), 2u);
  EXPECT_EQ(mesh.routing_entries(1), 2u);
  EXPECT_EQ(mesh.routing_entries(2), 2u);

  mesh.unsubscribe(key);
  mesh.wait_idle();
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_EQ(mesh.routing_entries(n), 0u) << n;
  }
  mesh.publish(0, make_event(40, 90, 1, 1));
  mesh.wait_idle();
  mesh.flush_composites();
  EXPECT_EQ(firings.load(), 0u);
  EXPECT_EQ(mesh.stats().event_messages, 0u);
  EXPECT_THROW(mesh.unsubscribe(key), Error);
  mesh.shutdown();
  EXPECT_EQ(mesh.first_error(), "");
}

TEST_F(CompositeMeshTest, CoveringCollapsesCompositeLeavesAcrossSubscribers) {
  // A plain subscription covering a composite's leaf suppresses the leaf's
  // routing entry (they share the link tables), and vice versa.
  const auto net = make_line(RoutingMode::kRoutingCovered);
  MeshNetwork& mesh = *net;
  mesh.subscribe(3, "temperature >= 20",
                 [](NodeId, SubscriptionId, const Event&) {});
  mesh.wait_idle();
  EXPECT_EQ(mesh.routing_entries(0), 1u);

  std::atomic<std::uint64_t> firings{0};
  mesh.subscribe_composite(
      3, "seq({temperature >= 35}, {humidity >= 90}, w=10)",
      [&](NodeId, SubscriptionId, Timestamp) {
        firings.fetch_add(1, std::memory_order_relaxed);
      });
  mesh.wait_idle();
  // The A leaf is covered by the plain "temperature >= 20" entry; only the
  // humidity leaf adds a routing entry.
  EXPECT_EQ(mesh.routing_entries(0), 2u);
  EXPECT_EQ(mesh.routing_entries(1), 2u);

  // Events still reach node 3 (the cover forwards them) and detection runs.
  mesh.publish(0, make_event(37, 0, 1, 1));   // A via the covering entry
  mesh.publish(0, make_event(0, 95, 1, 4));   // B
  mesh.wait_idle();
  mesh.flush_composites();
  EXPECT_EQ(firings.load(), 1u);
  mesh.shutdown();
  EXPECT_EQ(mesh.first_error(), "");
}

TEST_F(CompositeMeshTest, SharedLeavesPropagateOnceAndRetractRefcounted) {
  // Plain kRouting (no covering): routing-entry counts expose the dedup
  // directly. Two composites at node 3 share the temperature leaf; a third
  // duplicates a leaf inside one expression.
  const auto net = make_line(RoutingMode::kRouting);
  MeshNetwork& mesh = *net;
  std::atomic<std::uint64_t> firings{0};
  const auto on_fire = [&](NodeId, SubscriptionId, Timestamp) {
    firings.fetch_add(1, std::memory_order_relaxed);
  };
  const SubscriptionId first = mesh.subscribe_composite(
      3, "seq({temperature >= 35}, {humidity >= 90}, w=10)", on_fire);
  mesh.wait_idle();
  EXPECT_EQ(mesh.routing_entries(0), 2u);

  const SubscriptionId second = mesh.subscribe_composite(
      3, "conj({temperature >= 35}, {radiation >= 50}, w=10)", on_fire);
  mesh.wait_idle();
  // Four leaves, three distinct profiles: the shared temperature leaf
  // reuses its network key instead of installing a second entry per link.
  EXPECT_EQ(mesh.routing_entries(0), 3u);
  EXPECT_EQ(mesh.routing_entries(2), 3u);

  // Intra-expression duplicate: one entry, not two.
  const SubscriptionId third = mesh.subscribe_composite(
      3, "disj({humidity <= 5}, {humidity <= 5})", on_fire);
  mesh.wait_idle();
  EXPECT_EQ(mesh.routing_entries(0), 4u);

  // Retracting the first composite must keep the shared leaf routed: the
  // second composite still detects events published at the far end.
  mesh.unsubscribe(first);
  mesh.wait_idle();
  EXPECT_EQ(mesh.routing_entries(0), 3u);
  mesh.publish(0, make_event(40, 50, 60, 7));  // completes the conj alone
  mesh.wait_idle();
  mesh.flush_composites();
  EXPECT_EQ(firings.load(), 1u);

  // Last references retract everything.
  mesh.unsubscribe(second);
  mesh.unsubscribe(third);
  mesh.wait_idle();
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_EQ(mesh.routing_entries(n), 0u) << n;
  }
  mesh.shutdown();
  EXPECT_EQ(mesh.first_error(), "");
}

TEST_F(CompositeMeshTest, AutoAdvanceWatermarkFiresFromUnrelatedTraffic) {
  // With auto_advance_watermark, traffic that matches no decomposed leaf
  // still drives the composite clock: a sparse leaf stream fires once any
  // later traffic passes the skew — no flush_composites() needed.
  MeshOptions options;
  options.mode = RoutingMode::kRoutingCovered;
  options.composite_skew = 10;
  options.auto_advance_watermark = true;
  MeshNetwork mesh(schema_, options);
  for (int i = 0; i < 3; ++i) mesh.add_node();
  mesh.connect(0, 1);
  mesh.connect(1, 2);
  mesh.start();

  std::atomic<std::uint64_t> firings{0};
  mesh.subscribe_composite(
      2, "seq({temperature >= 35}, {humidity >= 90}, w=10)",
      [&](NodeId, SubscriptionId, Timestamp) {
        firings.fetch_add(1, std::memory_order_relaxed);
      });
  mesh.wait_idle();

  mesh.publish(0, make_event(40, 0, 1, 1));  // A
  mesh.publish(0, make_event(0, 95, 1, 5));  // B — buffered behind the skew
  mesh.wait_idle();
  EXPECT_EQ(firings.load(), 0u);

  // Leaf-irrelevant traffic published AT the detection node advances its
  // watermark past instant 5 (5 + skew 10 < 40).
  mesh.publish(2, make_event(0, 0, 1, 40));
  mesh.wait_idle();
  EXPECT_EQ(firings.load(), 1u);

  // And the explicit mesh-wide tick drains without flush, too.
  mesh.publish(0, make_event(40, 0, 1, 100));
  mesh.publish(0, make_event(0, 95, 1, 104));
  mesh.wait_idle();
  mesh.advance_watermark(1000);
  EXPECT_EQ(firings.load(), 2u);
  mesh.shutdown();
  EXPECT_EQ(mesh.first_error(), "");
}

TEST_F(CompositeMeshTest, TopologyFileDrivesCompositesEndToEnd) {
  const mesh::MeshTopology topology = mesh::topology_from_string(
      "nodes 3\n"
      "link 0 1\n"
      "link 1 2\n"
      "csub 2 seq({temperature >= 35}, {humidity >= 90}, w=10)\n");
  ASSERT_EQ(topology.composites.size(), 1u);

  MeshOptions options;
  options.mode = RoutingMode::kRoutingCovered;
  MeshNetwork mesh(schema_, options);
  for (std::size_t n = 0; n < topology.nodes; ++n) mesh.add_node();
  for (const auto& [a, b] : topology.links) mesh.connect(a, b);
  mesh.start();

  std::atomic<std::uint64_t> firings{0};
  for (const auto& [node, expression] : topology.composites) {
    mesh.subscribe_composite(node, expression,
                             [&](NodeId, SubscriptionId, Timestamp) {
                               firings.fetch_add(1, std::memory_order_relaxed);
                             });
  }
  mesh.wait_idle();
  mesh.publish(0, make_event(40, 0, 1, 1));
  mesh.publish(0, make_event(0, 95, 1, 4));
  mesh.wait_idle();
  mesh.flush_composites();
  EXPECT_EQ(firings.load(), 1u);

  // The textual renderer round-trips csub lines.
  const mesh::MeshTopology again =
      mesh::topology_from_string(mesh::topology_to_string(topology));
  EXPECT_EQ(again.composites, topology.composites);
  mesh.shutdown();
}

TEST_F(CompositeMeshTest, ValidationHappensOnTheCallerThread) {
  const auto net = make_line(RoutingMode::kRouting);
  MeshNetwork& mesh = *net;
  const auto callback = [](NodeId, SubscriptionId, Timestamp) {};
  // Id-form leaves, foreign schemas, and null callbacks throw immediately.
  EXPECT_THROW(
      mesh.subscribe_composite(0, seq(primitive(1), primitive(2), 5),
                               callback),
      Error);
  const SchemaPtr other = testutil::example1_schema();
  EXPECT_THROW(mesh.subscribe_composite(
                   0, primitive(parse_profile(other, "temperature >= 0")),
                   callback),
               Error);
  EXPECT_THROW(
      mesh.subscribe_composite(0, "disj({temperature >= 0}, {humidity >= 0})",
                               mesh::MeshCompositeCallback{}),
      Error);
  EXPECT_THROW(mesh.subscribe_composite(9, "disj({temperature >= 0}, "
                                           "{humidity >= 0})",
                                        callback),
               Error);
  mesh.shutdown();
  EXPECT_EQ(mesh.first_error(), "");
}

}  // namespace
}  // namespace genas