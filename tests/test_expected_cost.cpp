// Tests for the exact expected-cost traversal (TV4) and its agreement with
// Monte-Carlo measurement (TV3).
#include <gtest/gtest.h>

#include <cmath>

#include "dist/shapes.hpp"
#include "sim/scenarios.hpp"
#include "test_util.hpp"
#include "tree/expected_cost.hpp"

namespace genas {
namespace {

TEST(ExpectedCost, Example2ThroughTheFullStack) {
  // Single attribute a1 = temperature [-30,50] with the three subranges of
  // Example 2, realized as three profiles. Event distribution: x1 2%,
  // x0 17%, x2 1%, x3 80% (uniform inside each subrange).
  const SchemaPtr schema =
      SchemaBuilder().add_integer("a1", -30, 50).build();
  ProfileSet profiles(schema);
  profiles.add(ProfileBuilder(schema).between("a1", -30, -20).build());
  profiles.add(ProfileBuilder(schema).between("a1", 30, 34).build());
  profiles.add(ProfileBuilder(schema).between("a1", 35, 50).build());

  std::vector<double> weights(81, 0.0);
  const auto spread = [&](DomainIndex lo, DomainIndex hi, double mass) {
    for (DomainIndex v = lo; v <= hi; ++v) {
      weights[static_cast<std::size_t>(v)] =
          mass / static_cast<double>(hi - lo + 1);
    }
  };
  spread(0, 10, 0.02);   // x1
  spread(11, 59, 0.17);  // x0
  spread(60, 64, 0.01);  // x2
  spread(65, 80, 0.80);  // x3
  const JointDistribution joint = JointDistribution::independent(
      schema, {DiscreteDistribution::from_weights(weights)});

  // V1 (event order): R = 1.21 (paper Example 2).
  TreeConfig v1;
  v1.value_order = ValueOrder::kEventProbability;
  v1.event_distribution = joint;
  const ProfileTree tree_v1 = ProfileTree::build(profiles, v1);
  EXPECT_NEAR(expected_cost(tree_v1, joint).ops_per_event, 1.21, 1e-9);

  // Binary search: R = 1.99.
  TreeConfig binary;
  binary.strategy = SearchStrategy::kBinary;
  binary.event_distribution = joint;
  const ProfileTree tree_bin = ProfileTree::build(profiles, binary);
  EXPECT_NEAR(expected_cost(tree_bin, joint).ops_per_event, 1.99, 1e-9);

  // Match probability = P(W) = 0.83; one profile per match.
  const CostReport report = expected_cost(tree_v1, joint);
  EXPECT_NEAR(report.match_probability, 0.83, 1e-9);
  EXPECT_NEAR(report.pairs_per_event, 0.83, 1e-9);
}

TEST(ExpectedCost, AgreesWithEmpiricalMeasurement) {
  // TV4 (closed form) vs TV3 (sampled) on a non-trivial workload.
  auto workload = sim::multi_attribute(3, 40, 120, "gauss", "d7", 0.3, 11);
  TreeConfig config;
  config.value_order = ValueOrder::kEventProbability;
  config.event_distribution = workload.events;
  const ProfileTree tree = ProfileTree::build(workload.profiles, config);

  const CostReport exact = expected_cost(tree, workload.events);
  EventSampler sampler(workload.events, 99);
  const CostReport measured = empirical_cost(tree, sampler, 60000);

  EXPECT_NEAR(measured.ops_per_event, exact.ops_per_event,
              0.03 * exact.ops_per_event + 0.02);
  EXPECT_NEAR(measured.match_probability, exact.match_probability, 0.02);
  EXPECT_NEAR(measured.pairs_per_event, exact.pairs_per_event,
              0.05 * exact.pairs_per_event + 0.02);
}

TEST(ExpectedCost, PerProfileMetricsAgreeWithSampling) {
  auto workload = sim::single_attribute(60, 40, "gauss", "d9", 5);
  TreeConfig config;
  config.value_order = ValueOrder::kEventProbability;
  config.event_distribution = workload.events;
  const ProfileTree tree = ProfileTree::build(workload.profiles, config);

  const CostReport exact = expected_cost(tree, workload.events);
  EventSampler sampler(workload.events, 17);
  const CostReport measured = empirical_cost(tree, sampler, 80000);

  ASSERT_EQ(exact.per_profile_ops.size(), measured.per_profile_ops.size());
  for (std::size_t i = 0; i < exact.per_profile_ops.size(); ++i) {
    if (std::isnan(exact.per_profile_ops[i])) continue;
    if (std::isnan(measured.per_profile_ops[i])) continue;  // rare profile
    EXPECT_NEAR(measured.per_profile_ops[i], exact.per_profile_ops[i],
                0.15 * exact.per_profile_ops[i] + 0.3)
        << "profile " << i;
  }
  EXPECT_NEAR(measured.ops_per_profile, exact.ops_per_profile,
              0.1 * exact.ops_per_profile + 0.3);
}

TEST(ExpectedCost, MixtureDistributionHandledExactly) {
  // Correlated events: two regimes, each concentrated on a different
  // attribute region. The DAG propagation must keep per-component reach.
  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("x", 0, 19)
                               .add_integer("y", 0, 19)
                               .build();
  ProfileSet profiles(schema);
  profiles.add(ProfileBuilder(schema)
                   .between("x", 0, 4)
                   .between("y", 0, 4)
                   .build());
  profiles.add(ProfileBuilder(schema)
                   .between("x", 15, 19)
                   .between("y", 15, 19)
                   .build());

  const auto low = shapes::percent_peak(20, 1.0, false, 0.25);
  const auto high = shapes::percent_peak(20, 1.0, true, 0.25);
  const JointDistribution joint = JointDistribution::mixture(
      schema, {{low, low}, {high, high}}, {0.5, 0.5});

  TreeConfig config;
  config.event_distribution = joint;
  const ProfileTree tree = ProfileTree::build(profiles, config);
  const CostReport exact = expected_cost(tree, joint);
  // Under perfect correlation every event matches exactly one profile.
  EXPECT_NEAR(exact.match_probability, 1.0, 1e-9);
  EXPECT_NEAR(exact.pairs_per_event, 1.0, 1e-9);

  EventSampler sampler(joint, 123);
  const CostReport measured = empirical_cost(tree, sampler, 30000);
  EXPECT_NEAR(measured.ops_per_event, exact.ops_per_event,
              0.03 * exact.ops_per_event + 0.02);
  EXPECT_NEAR(measured.match_probability, 1.0, 1e-9);
}

TEST(ExpectedCost, PrecisionRunStopsAtRequestedPrecision) {
  auto workload = sim::single_attribute(50, 60, "equal", "gauss", 3);
  TreeConfig config;
  config.event_distribution = workload.events;
  const ProfileTree tree = ProfileTree::build(workload.profiles, config);

  EventSampler sampler(workload.events, 5);
  const PrecisionRun run =
      empirical_cost_to_precision(tree, sampler, 0.05, 200, 200000);
  EXPECT_GE(run.events_posted, 200u);
  EXPECT_LE(run.events_posted, 200000u);

  const CostReport exact = expected_cost(tree, workload.events);
  // 95% CI at 5% relative width: generous 10% tolerance.
  EXPECT_NEAR(run.report.ops_per_event, exact.ops_per_event,
              0.1 * exact.ops_per_event + 0.05);
}

TEST(ExpectedCost, PerAttributeBreakdownSumsToTotal) {
  // Per-level decomposition (paper Example 3's E(X_j | ...) terms).
  auto workload = sim::multi_attribute(3, 30, 100, "gauss", "d11", 0.2, 21);
  TreeConfig config;
  config.value_order = ValueOrder::kEventProbability;
  config.event_distribution = workload.events;
  const ProfileTree tree = ProfileTree::build(workload.profiles, config);
  const CostReport report = expected_cost(tree, workload.events);
  ASSERT_EQ(report.per_attribute_ops.size(), 3u);
  double sum = 0.0;
  for (const double v : report.per_attribute_ops) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, report.ops_per_event, 1e-9);
  // The root attribute is visited by every event, so its share is positive.
  EXPECT_GT(report.per_attribute_ops[tree.nodes().back().attribute], 0.0);
}

TEST(ExpectedCost, EmptyTreeReportsZero) {
  const SchemaPtr schema = SchemaBuilder().add_integer("x", 0, 9).build();
  ProfileSet empty(schema);
  const ProfileTree tree = ProfileTree::build(empty, {});
  const JointDistribution joint =
      JointDistribution::independent(schema, {shapes::equal(10)});
  const CostReport report = expected_cost(tree, joint);
  EXPECT_DOUBLE_EQ(report.ops_per_event, 0.0);
  EXPECT_DOUBLE_EQ(report.match_probability, 0.0);
  EXPECT_DOUBLE_EQ(report.ops_per_profile, 0.0);
}

}  // namespace
}  // namespace genas
