// Tests for JointDistribution: independent products, mixtures, and exact
// conditional probabilities.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dist/joint.hpp"
#include "dist/shapes.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class JointTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = SchemaBuilder()
                          .add_integer("x", 0, 9)
                          .add_integer("y", 0, 4)
                          .build();
};

TEST_F(JointTest, IndependentMarginalsRoundTrip) {
  const auto joint = JointDistribution::independent(
      schema_, {shapes::falling(10), shapes::rising(5)});
  EXPECT_TRUE(joint.is_independent());
  EXPECT_EQ(joint.component_count(), 1u);
  EXPECT_NEAR(DiscreteDistribution::l1_distance(joint.marginal(0),
                                                shapes::falling(10)),
              0.0, 1e-12);
}

TEST_F(JointTest, ValidationErrors) {
  EXPECT_THROW(JointDistribution::independent(schema_, {shapes::equal(10)}),
               Error);  // one marginal missing
  EXPECT_THROW(JointDistribution::independent(
                   schema_, {shapes::equal(10), shapes::equal(9)}),
               Error);  // size mismatch
  EXPECT_THROW(JointDistribution::mixture(schema_, {}, {}), Error);
  EXPECT_THROW(
      JointDistribution::mixture(
          schema_, {{shapes::equal(10), shapes::equal(5)}}, {0.0}),
      Error);  // zero total weight
}

TEST_F(JointTest, IndependentProbabilityIsProductOfMarginals) {
  const auto joint = JointDistribution::independent(
      schema_, {shapes::falling(10), shapes::rising(5)});
  const double p = joint.probability({0, 4});
  EXPECT_NEAR(p, shapes::falling(10).pmf(0) * shapes::rising(5).pmf(4), 1e-12);
}

TEST_F(JointTest, IndependentConditionalIsUnchanged) {
  const auto joint = JointDistribution::independent(
      schema_, {shapes::falling(10), shapes::rising(5)});
  const auto root = joint.root();
  const double before = root.probability(1, {0, 1});
  const auto conditioned = root.given(0, {0, 2});
  EXPECT_NEAR(conditioned.probability(1, {0, 1}), before, 1e-12);
}

TEST_F(JointTest, MixtureMarginalIsWeightedAverage) {
  const auto joint = JointDistribution::mixture(
      schema_,
      {{shapes::percent_peak(10, 1.0, false, 0.1), shapes::equal(5)},
       {shapes::percent_peak(10, 1.0, true, 0.1), shapes::equal(5)}},
      {0.25, 0.75});
  const auto m = joint.marginal(0);
  EXPECT_NEAR(m.mass(Interval{0, 0}), 0.25, 1e-9);
  EXPECT_NEAR(m.mass(Interval{9, 9}), 0.75, 1e-9);
  EXPECT_NEAR(joint.component_weight(0), 0.25, 1e-12);
}

TEST_F(JointTest, MixtureConditioningReweightsComponents) {
  // Component 0 puts x low and y low; component 1 puts x high and y high.
  // Observing x low must make y low nearly certain — exactly the
  // correlation structure the conditional tracker must capture.
  const auto low_x = shapes::percent_peak(10, 1.0, false, 0.1);
  const auto high_x = shapes::percent_peak(10, 1.0, true, 0.1);
  const auto low_y = shapes::percent_peak(5, 1.0, false, 0.2);
  const auto high_y = shapes::percent_peak(5, 1.0, true, 0.2);
  const auto joint = JointDistribution::mixture(
      schema_, {{low_x, low_y}, {high_x, high_y}}, {0.5, 0.5});

  const auto root = joint.root();
  EXPECT_NEAR(root.probability(1, {0, 0}), 0.5, 1e-9);
  const auto given_low_x = root.given(0, {0, 0});
  EXPECT_NEAR(given_low_x.probability(1, {0, 0}), 1.0, 1e-9);
  EXPECT_NEAR(given_low_x.probability(1, {4, 4}), 0.0, 1e-9);
}

TEST_F(JointTest, ConditioningOnImpossibleIntervalThrows) {
  const auto joint = JointDistribution::independent(
      schema_, {shapes::percent_peak(10, 1.0, false, 0.1), shapes::equal(5)});
  const auto root = joint.root();
  EXPECT_THROW(root.given(0, {9, 9}), Error);
}

TEST_F(JointTest, MixtureProbabilitySumsOverComponents) {
  const auto joint = JointDistribution::mixture(
      schema_,
      {{shapes::equal(10), shapes::equal(5)},
       {shapes::percent_peak(10, 1.0, false, 0.1), shapes::equal(5)}},
      {0.5, 0.5});
  EXPECT_NEAR(joint.probability({0, 0}),
              0.5 * 0.1 * 0.2 + 0.5 * 1.0 * 0.2, 1e-9);
}

}  // namespace
}  // namespace genas
