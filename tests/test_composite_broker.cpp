// Tests for first-class composite subscriptions at the Broker: decomposition
// into internal primitive profiles, watermark-driven firing, flush, skew,
// unsubscription, coexistence with delivery sinks, and re-entrancy from
// composite callbacks.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "ens/broker.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class CompositeBrokerTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();
  Broker broker_{schema_};
  std::vector<Timestamp> fired_;

  CompositeCallback recorder() {
    return [this](const CompositeFiring& f) { fired_.push_back(f.time); };
  }

  void publish(std::int64_t t, std::int64_t h, std::int64_t r,
               Timestamp time) {
    Event event = Event::from_pairs(
        schema_, {{"temperature", t}, {"humidity", h}, {"radiation", r}});
    event.set_time(time);
    broker_.publish(event);
  }
};

TEST_F(CompositeBrokerTest, SequenceDetectsAcrossPublishes) {
  broker_.subscribe_composite(
      seq(primitive(parse_profile(schema_, "temperature >= 35")),
          primitive(parse_profile(schema_, "humidity >= 90")), 10),
      recorder());
  EXPECT_EQ(broker_.composite_count(), 1u);
  // Decomposed leaves are internal: not user subscriptions.
  EXPECT_EQ(broker_.subscription_count(), 0u);

  publish(40, 0, 1, 1);   // A
  publish(0, 95, 1, 5);   // B, 4 <= 10 after A
  EXPECT_TRUE(fired_.empty());  // instant 5 awaits the watermark
  // The watermark advances on primitive (leaf-matching) stimuli: a later A
  // pushes it past instant 5 and the sequence fires — no flush needed.
  publish(40, 0, 1, 6);
  EXPECT_EQ(fired_, (std::vector<Timestamp>{5}));
}

TEST_F(CompositeBrokerTest, FlushReleasesTheTail) {
  broker_.subscribe_composite(
      conj(primitive(parse_profile(schema_, "temperature >= 35")),
           primitive(parse_profile(schema_, "humidity >= 90")), 10),
      recorder());
  publish(0, 95, 1, 2);
  publish(40, 0, 1, 7);
  EXPECT_TRUE(fired_.empty());
  broker_.flush_composites();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{7}));
}

TEST_F(CompositeBrokerTest, OneEventCanCompleteAConjunctionAlone) {
  // A single event matching both leaves is one simultaneous instant.
  broker_.subscribe_composite(
      conj(primitive(parse_profile(schema_, "temperature >= 35")),
           primitive(parse_profile(schema_, "humidity >= 90")), 10),
      recorder());
  publish(40, 95, 1, 3);
  broker_.flush_composites();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{3}));
}

TEST_F(CompositeBrokerTest, SkewToleratesOutOfOrderPublishes) {
  broker_.set_composite_skew(100);
  broker_.subscribe_composite(
      seq(primitive(parse_profile(schema_, "temperature >= 35")),
          primitive(parse_profile(schema_, "humidity >= 90")), 10),
      recorder());
  // B arrives before A (timestamp-wise): the reorder stage sorts them.
  publish(0, 95, 1, 8);
  publish(40, 0, 1, 6);
  broker_.flush_composites();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{8}));
}

TEST_F(CompositeBrokerTest, TextualFormSubscribes) {
  broker_.subscribe_composite(
      "seq({temperature >= 35}, {humidity >= 90}, w=10)", recorder());
  publish(40, 0, 1, 1);
  publish(0, 95, 1, 5);
  broker_.flush_composites();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{5}));
}

TEST_F(CompositeBrokerTest, UnsubscribeCompositeRemovesLeaves) {
  const CompositeId id = broker_.subscribe_composite(
      disj(primitive(parse_profile(schema_, "temperature >= 35")),
           primitive(parse_profile(schema_, "humidity >= 90"))),
      recorder());
  publish(40, 0, 1, 1);
  broker_.flush_composites();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{1}));

  broker_.unsubscribe_composite(id);
  EXPECT_EQ(broker_.composite_count(), 0u);
  // The internal leaf subscriptions are gone: a matching event produces no
  // notification (and thus no further firing).
  const std::uint64_t notifications_before =
      broker_.counters().notifications;
  publish(40, 95, 1, 3);
  broker_.flush_composites();
  EXPECT_EQ(fired_.size(), 1u);
  EXPECT_EQ(broker_.counters().notifications, notifications_before);
  EXPECT_THROW(broker_.unsubscribe_composite(id), Error);
}

TEST_F(CompositeBrokerTest, CoexistsWithDeliverySinksAndPlainSubs) {
  // The composite tap must not disturb a user sink or plain subscriptions
  // (the regression the multi-sink API exists for).
  int sink_seen = 0;
  int plain_seen = 0;
  broker_.set_delivery_sink([&](const Notification&) { ++sink_seen; });
  broker_.subscribe("temperature >= 35",
                    [&](const Notification&) { ++plain_seen; });
  broker_.subscribe_composite(
      seq(primitive(parse_profile(schema_, "temperature >= 35")),
          primitive(parse_profile(schema_, "humidity >= 90")), 10),
      recorder());

  publish(40, 0, 1, 1);
  publish(0, 95, 1, 2);
  broker_.flush_composites();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{2}));
  EXPECT_EQ(plain_seen, 1);
  // The sink observes the plain delivery and both internal leaf taps.
  EXPECT_EQ(sink_seen, 3);
  EXPECT_EQ(broker_.subscription_count(), 1u);
}

TEST_F(CompositeBrokerTest, CompositeCallbackMayReenterTheBroker) {
  CompositeId second = 0;
  std::vector<Timestamp> second_fired;
  const CompositeId first = broker_.subscribe_composite(
      disj(primitive(parse_profile(schema_, "temperature >= 35")),
           primitive(parse_profile(schema_, "humidity >= 90"))),
      [&](const CompositeFiring& f) {
        fired_.push_back(f.time);
        if (second == 0) {
          second = broker_.subscribe_composite(
              disj(primitive(parse_profile(schema_, "radiation >= 50")),
                   primitive(parse_profile(schema_, "radiation >= 90"))),
              [&](const CompositeFiring& g) {
                second_fired.push_back(g.time);
              });
        }
      });
  publish(40, 0, 1, 1);
  broker_.flush_composites();  // fires the first; its callback adds `second`
  publish(0, 0, 60, 2);        // matches only the re-entrantly added one
  broker_.flush_composites();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{1}));
  EXPECT_EQ(second_fired, (std::vector<Timestamp>{2}));

  // Re-entrant unsubscribe from a composite callback.
  CompositeId third = 0;
  third = broker_.subscribe_composite(
      disj(primitive(parse_profile(schema_, "temperature <= -20")),
           primitive(parse_profile(schema_, "temperature <= -25"))),
      [&](const CompositeFiring& f) {
        fired_.push_back(f.time);
        broker_.unsubscribe_composite(third);
      });
  publish(-22, 0, 1, 10);
  publish(-22, 0, 1, 11);  // advances the watermark: `third` fires at 10 and
                           // unsubscribes itself mid-delivery
  broker_.flush_composites();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{1, 10}));
  EXPECT_EQ(broker_.composite_count(), 2u);
  broker_.unsubscribe_composite(first);
  broker_.unsubscribe_composite(second);
}

TEST_F(CompositeBrokerTest, Validation) {
  // Detector-level (profile-id) leaves are broker-local: rejected.
  EXPECT_THROW(
      broker_.subscribe_composite(seq(primitive(1), primitive(2), 10),
                                  recorder()),
      Error);
  // Foreign-schema leaves are rejected.
  const SchemaPtr other = testutil::example1_schema();
  EXPECT_THROW(broker_.subscribe_composite(
                   primitive(parse_profile(other, "temperature >= 0")),
                   recorder()),
               Error);
  EXPECT_THROW(broker_.subscribe_composite(
                   primitive(parse_profile(schema_, "temperature >= 0")),
                   nullptr),
               Error);
  EXPECT_THROW(broker_.subscribe_composite(CompositeExprPtr{}, recorder()),
               Error);
  EXPECT_THROW(broker_.unsubscribe_composite(12345), Error);
  EXPECT_THROW(broker_.set_composite_skew(-1), Error);
}

TEST_F(CompositeBrokerTest, IntraExpressionDuplicateLeafRegistersOnce) {
  // Regression: two leaves with equal profiles inside ONE expression used
  // to subscribe twice (dedup was keyed by node pointer, not by profile
  // equality) — burning a second engine registration and a second ingress
  // stimulus per matching event.
  broker_.subscribe_composite(
      disj(primitive(parse_profile(schema_, "temperature >= 35")),
           primitive(parse_profile(schema_, "temperature >= 35"))),
      recorder());
  EXPECT_EQ(broker_.composite_leaf_count(), 1u);
  // Engine-level: exactly one registered profile constrains temperature.
  EXPECT_EQ(broker_.profile_statistics().constrained_profiles(
                schema_->id_of("temperature")),
            1u);

  const std::uint64_t before = broker_.counters().notifications;
  publish(40, 0, 1, 1);
  broker_.flush_composites();
  // One internal tap delivery — not one per duplicate — and one firing.
  EXPECT_EQ(broker_.counters().notifications, before + 1);
  EXPECT_EQ(fired_, (std::vector<Timestamp>{1}));

  // Equality is semantic (normalized accepted sets), not textual: a
  // between-spelling of the same range still dedups.
  broker_.subscribe_composite(
      disj(primitive(parse_profile(schema_, "temperature in [35, 50]")),
           primitive(parse_profile(schema_, "humidity >= 90"))),
      recorder());
  EXPECT_EQ(broker_.composite_leaf_count(), 2u);
}

TEST_F(CompositeBrokerTest, SharedLeavesAcrossCompositesAreRefcounted) {
  const CompositeId first = broker_.subscribe_composite(
      seq(primitive(parse_profile(schema_, "temperature >= 35")),
          primitive(parse_profile(schema_, "humidity >= 90")), 10),
      recorder());
  const CompositeId second = broker_.subscribe_composite(
      conj(primitive(parse_profile(schema_, "temperature >= 35")),
           primitive(parse_profile(schema_, "radiation >= 50")), 10),
      recorder());
  // Four leaves, three distinct profiles: the temperature leaf is shared.
  EXPECT_EQ(broker_.composite_leaf_count(), 3u);

  // Removing the first composite keeps the shared leaf alive for the
  // second, which must still detect through it.
  broker_.unsubscribe_composite(first);
  EXPECT_EQ(broker_.composite_leaf_count(), 2u);
  publish(40, 0, 60, 5);  // completes the conj in one instant
  broker_.flush_composites();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{5}));

  // The last reference retracts the registration.
  broker_.unsubscribe_composite(second);
  EXPECT_EQ(broker_.composite_leaf_count(), 0u);
  const std::uint64_t before = broker_.counters().notifications;
  publish(40, 95, 60, 6);
  broker_.flush_composites();
  EXPECT_EQ(broker_.counters().notifications, before);
  EXPECT_EQ(fired_.size(), 1u);
}

TEST_F(CompositeBrokerTest, AdvanceWatermarkFiresSparseStreamsWithoutFlush) {
  broker_.set_composite_skew(50);
  broker_.subscribe_composite(
      seq(primitive(parse_profile(schema_, "temperature >= 35")),
          primitive(parse_profile(schema_, "humidity >= 90")), 10),
      recorder());
  publish(40, 0, 1, 1);  // A
  publish(0, 95, 1, 5);  // B — buffered: nothing newer than skew has passed
  EXPECT_TRUE(fired_.empty());
  EXPECT_EQ(broker_.composite_buffered(), 2u);

  // The time-driven tick releases both instants; no flush, no stimulus.
  broker_.advance_watermark(1000);
  EXPECT_EQ(fired_, (std::vector<Timestamp>{5}));
  EXPECT_EQ(broker_.composite_buffered(), 0u);

  // Bounded-memory regression: a sparse leaf stream with periodic external
  // ticks never accumulates more than the skew window of instants.
  std::size_t max_buffered = 0;
  for (Timestamp t = 2000; t < 3000; t += 25) {
    publish(40, 0, 1, t);
    broker_.advance_watermark(t);
    max_buffered = std::max(max_buffered, broker_.composite_buffered());
  }
  EXPECT_LE(max_buffered, 3u);  // skew 50 / stride 25, plus the edge
}

TEST_F(CompositeBrokerTest, CompositeIndexToggleKeepsFiringsIdentical) {
  // Same broker workload with the dispatch index off (the swept oracle):
  // the firing sequence must match the default exactly.
  Broker swept(schema_);
  swept.set_composite_index_enabled(false);
  std::vector<Timestamp> swept_fired;
  const auto expr = [&] {
    return seq(primitive(parse_profile(schema_, "temperature >= 35")),
               primitive(parse_profile(schema_, "humidity >= 90")), 10);
  };
  broker_.subscribe_composite(expr(), recorder());
  swept.subscribe_composite(expr(), [&](const CompositeFiring& f) {
    swept_fired.push_back(f.time);
  });
  for (Timestamp t = 0; t < 40; ++t) {
    const std::int64_t temp = (t % 3 == 0) ? 40 : 0;
    const std::int64_t hum = (t % 5 == 0) ? 95 : 0;
    Event event = Event::from_pairs(
        schema_,
        {{"temperature", temp}, {"humidity", hum}, {"radiation", 1}});
    event.set_time(t);
    broker_.publish(event);
    swept.publish(event);
  }
  broker_.flush_composites();
  swept.flush_composites();
  EXPECT_FALSE(fired_.empty());
  EXPECT_EQ(fired_, swept_fired);
}

TEST_F(CompositeBrokerTest, NotificationTimestampDrivesDetectionNotArrival) {
  // Detection consumes event timestamps: publishing the same wall-clock
  // instant with distinct event times still orders the sequence.
  broker_.subscribe_composite(
      seq(primitive(parse_profile(schema_, "temperature >= 35")),
          primitive(parse_profile(schema_, "humidity >= 90")), 5),
      recorder());
  publish(40, 0, 1, 100);
  publish(0, 95, 1, 200);  // far outside the window
  broker_.flush_composites();
  EXPECT_TRUE(fired_.empty());
}

TEST_F(CompositeBrokerTest, TokenedRedeliveryNeverDoubleFires) {
  // At-least-once transports may hand the broker the same event twice.
  // With a dedup window armed, a tokened redelivery is invisible to
  // composite detection: the conj fires exactly once.
  broker_.set_composite_dedup_window(32);
  broker_.subscribe_composite(
      conj(primitive(parse_profile(schema_, "temperature >= 35")),
           primitive(parse_profile(schema_, "humidity >= 90")), 10),
      recorder());

  Event both = Event::from_pairs(
      schema_, {{"temperature", 40}, {"humidity", 95}, {"radiation", 1}});
  both.set_time(5);
  broker_.publish(both, 9001);
  broker_.publish(both, 9001);  // redelivery, same token
  broker_.flush_composites();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{5}));
}

TEST_F(CompositeBrokerTest, UntokenedPublishesBypassTheDedupWindow) {
  // Token 0 (and the plain publish overload) stay untracked even with a
  // window armed — local publishers are exactly-once by construction.
  broker_.set_composite_dedup_window(32);
  broker_.subscribe_composite(
      conj(primitive(parse_profile(schema_, "temperature >= 35")),
           primitive(parse_profile(schema_, "humidity >= 90")), 10),
      recorder());

  Event both = Event::from_pairs(
      schema_, {{"temperature", 40}, {"humidity", 95}, {"radiation", 1}});
  both.set_time(3);
  Event later = both;
  later.set_time(4);
  broker_.publish(both, 0);  // untracked: both instants fire
  broker_.publish(later, 0);

  Event tracked = both;
  tracked.set_time(5);
  Event tracked_redelivery = both;
  tracked_redelivery.set_time(6);
  broker_.publish(tracked, 500);
  broker_.publish(tracked_redelivery, 500);  // same token: deduped

  broker_.flush_composites();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{3, 4, 5}));
}

TEST_F(CompositeBrokerTest, DedupDoesNotSuppressPlainDeliveries) {
  // The window guards composite state only; plain subscribers see every
  // publish (at-least-once duplicates surface as counted deliveries).
  broker_.set_composite_dedup_window(32);
  int delivered = 0;
  broker_.subscribe(parse_profile(schema_, "temperature >= 35"),
                    [&](const Notification&) { ++delivered; });
  Event hot = Event::from_pairs(
      schema_, {{"temperature", 40}, {"humidity", 0}, {"radiation", 1}});
  hot.set_time(1);
  broker_.publish(hot, 77);
  broker_.publish(hot, 77);
  EXPECT_EQ(delivered, 2);
}

TEST_F(CompositeBrokerTest, BatchPublishThreadsPerEventTokens) {
  broker_.set_composite_dedup_window(32);
  broker_.subscribe_composite(
      seq(primitive(parse_profile(schema_, "temperature >= 35")),
          primitive(parse_profile(schema_, "humidity >= 90")), 10),
      recorder());

  Event a = Event::from_pairs(
      schema_, {{"temperature", 40}, {"humidity", 0}, {"radiation", 1}});
  a.set_time(1);
  Event b = Event::from_pairs(
      schema_, {{"temperature", 0}, {"humidity", 95}, {"radiation", 1}});
  b.set_time(4);
  const std::vector<Event> events{a, b, a, b};  // redeliveries inline
  const std::vector<std::uint64_t> tokens{11, 12, 11, 12};
  broker_.publish_batch(events, tokens);
  broker_.flush_composites();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{4}));

  EXPECT_THROW(broker_.publish_batch(events, std::vector<std::uint64_t>{1}),
               Error);
}

}  // namespace
}  // namespace genas