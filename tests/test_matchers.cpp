// Cross-matcher agreement: naive, counting, and tree matchers must produce
// identical matched sets on random workloads.
#include <gtest/gtest.h>

#include "dist/sampler.hpp"
#include "dist/shapes.hpp"
#include "match/counting_matcher.hpp"
#include "match/naive_matcher.hpp"
#include "match/tree_matcher.hpp"
#include "sim/workload.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

TEST(Matchers, CountingHandlesDontCareOnlyProfiles) {
  const SchemaPtr schema = testutil::example1_schema();
  ProfileSet set(schema);
  const ProfileId all = set.add(ProfileBuilder(schema).build());
  const ProfileId hot =
      set.add(ProfileBuilder(schema).where("temperature", Op::kGe, 35).build());

  CountingMatcher counting(set);
  const Event cold = Event::from_pairs(
      schema, {{"temperature", -30}, {"humidity", 0}, {"radiation", 1}});
  EXPECT_EQ(counting.match(cold).matched, (std::vector<ProfileId>{all}));
  const Event warm = Event::from_pairs(
      schema, {{"temperature", 40}, {"humidity", 0}, {"radiation", 1}});
  EXPECT_EQ(counting.match(warm).matched,
            (std::vector<ProfileId>{all, hot}));
}

TEST(Matchers, RebuildPicksUpRemovals) {
  const SchemaPtr schema = testutil::example1_schema();
  ProfileSet set(schema);
  const ProfileId a =
      set.add(ProfileBuilder(schema).where("humidity", Op::kGe, 50).build());
  const ProfileId b =
      set.add(ProfileBuilder(schema).where("humidity", Op::kGe, 60).build());

  NaiveMatcher naive(set);
  CountingMatcher counting(set);
  const Event wet = Event::from_pairs(
      schema, {{"temperature", 0}, {"humidity", 90}, {"radiation", 1}});
  EXPECT_EQ(naive.match(wet).matched, (std::vector<ProfileId>{a, b}));

  set.remove(a);
  naive.rebuild(set);
  counting.rebuild(set);
  EXPECT_EQ(naive.match(wet).matched, (std::vector<ProfileId>{b}));
  EXPECT_EQ(counting.match(wet).matched, (std::vector<ProfileId>{b}));
}

class MatcherAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherAgreement, AllThreeMatchersAgree) {
  const std::uint64_t seed = GetParam();
  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a", 0, 49)
                               .add_integer("b", 0, 29)
                               .add_integer("c", -5, 14)
                               .build();
  ProfileWorkloadOptions options;
  options.count = 200;
  options.dont_care_probability = 0.4;
  options.equality_only = seed % 2 == 0;
  options.range_width_mean = 0.2;
  options.seed = seed;
  const ProfileSet profiles = generate_profiles(
      schema, make_profile_distributions(schema, {"gauss"}), options);

  const JointDistribution joint = make_event_distribution(schema, {"equal"});

  const NaiveMatcher naive(profiles);
  const CountingMatcher counting(profiles);
  OrderingPolicy policy;
  policy.value_order = ValueOrder::kEventProbability;
  const TreeMatcher tree(profiles, policy, joint);

  EventSampler sampler(joint, seed + 100);
  for (int i = 0; i < 300; ++i) {
    const Event event = sampler.sample();
    const auto expected = naive.match(event).matched;
    EXPECT_EQ(counting.match(event).matched, expected) << event.to_string();
    EXPECT_EQ(tree.match(event).matched, expected) << event.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MatcherAgreement,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Matchers, TreeVisitsFarFewerPostingsThanNaiveOnBigSets) {
  const SchemaPtr schema = SchemaBuilder().add_integer("a", 0, 999).build();
  ProfileWorkloadOptions options;
  options.count = 2000;
  options.seed = 9;
  const ProfileSet profiles = generate_profiles(
      schema, make_profile_distributions(schema, {"equal"}), options);
  const JointDistribution joint = make_event_distribution(schema, {"equal"});

  const NaiveMatcher naive(profiles);
  OrderingPolicy policy;
  policy.strategy = SearchStrategy::kBinary;
  const TreeMatcher tree(profiles, policy, joint);

  EventSampler sampler(joint, 10);
  std::uint64_t naive_ops = 0;
  std::uint64_t tree_ops = 0;
  for (int i = 0; i < 200; ++i) {
    const Event event = sampler.sample();
    naive_ops += naive.match(event).operations;
    tree_ops += tree.match(event).operations;
  }
  // Binary tree search is logarithmic in p; naive is linear.
  EXPECT_LT(tree_ops * 20, naive_ops);
}

TEST(Matchers, CountingSurvivesMoreThan255Predicates) {
  // Regression: required_/counters_ were std::uint8_t, so a profile with
  // more than 255 predicates wrapped (e.g. 260 -> 4) and an event matching
  // exactly the wrapped count of predicates false-matched.
  constexpr std::size_t kAttributes = 260;
  SchemaBuilder builder;
  for (std::size_t i = 0; i < kAttributes; ++i) {
    builder.add_integer("a" + std::to_string(i), 0, 1);
  }
  const SchemaPtr schema = builder.build();

  ProfileSet set(schema);
  ProfileBuilder profile(schema);
  for (std::size_t i = 0; i < kAttributes; ++i) {
    profile.where("a" + std::to_string(i), Op::kEq, 1);
  }
  const ProfileId wants_all = set.add(profile.build());
  const CountingMatcher counting(set);

  // 260 % 256 == 4: satisfy exactly 4 predicates — the wrapped counter
  // would have reported a match here.
  std::vector<DomainIndex> indices(kAttributes, 0);
  for (std::size_t i = 0; i < 4; ++i) indices[i] = 1;
  const Event four_of_260 = Event::from_indices(schema, indices);
  EXPECT_TRUE(counting.match(four_of_260).matched.empty());

  // All 260 satisfied still matches.
  const Event all_260 =
      Event::from_indices(schema, std::vector<DomainIndex>(kAttributes, 1));
  EXPECT_EQ(counting.match(all_260).matched,
            (std::vector<ProfileId>{wants_all}));
}

TEST(Matchers, Names) {
  const SchemaPtr schema = SchemaBuilder().add_integer("a", 0, 9).build();
  ProfileSet set(schema);
  set.add(ProfileBuilder(schema).where("a", Op::kEq, 1).build());
  EXPECT_EQ(NaiveMatcher(set).name(), "naive");
  EXPECT_EQ(CountingMatcher(set).name(), "counting");
  EXPECT_EQ(TreeMatcher(set, {}, std::nullopt).name(), "tree");
}

}  // namespace
}  // namespace genas
