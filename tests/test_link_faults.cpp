// Reliable mesh link tests: per-link sequencing, retransmission after
// drops, receiver-side duplicate/gap discard, quiescence with unacked
// frames in flight, and the FaultPlan's deterministic rule engine.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "mesh/mesh.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

using mesh::MeshNetwork;
using mesh::MeshOptions;
using net::FaultAction;
using net::FaultPlan;
using net::kAnyLink;
using namespace std::chrono_literals;

MeshOptions reliable_options(std::shared_ptr<FaultPlan> plan = nullptr) {
  MeshOptions options;
  options.reliable_links = true;
  options.fault_plan = std::move(plan);
  options.link_retransmit_interval = 500us;
  // One event per frame: the fault plans here meter drops/dups/reorders in
  // transmissions, and these tests size their bursts assuming each event is
  // one. (Batched frames under faults are covered by BatchedLinks below.)
  options.link_batch_max = 1;
  return options;
}

Event make_event(const SchemaPtr& schema, int temperature, Timestamp time) {
  return Event::from_pairs(
      schema,
      {{"temperature", temperature}, {"humidity", 95}, {"radiation", 1}},
      time);
}

/// Sums one LinkStats field across every link of every node.
template <typename Member>
std::uint64_t total(const MeshNetwork& mesh, std::size_t nodes, Member field) {
  std::uint64_t sum = 0;
  for (std::size_t n = 0; n < nodes; ++n) {
    for (const auto& link : mesh.link_stats(static_cast<mesh::NodeId>(n))) {
      sum += link.*field;
    }
  }
  return sum;
}

// ---------------------------------------------------------------------------
// FaultPlan rule engine.

TEST(FaultPlan, NthRulesFireExactlyOncePerDirectedLink) {
  FaultPlan plan(7);
  plan.drop_nth(1, 2, 3);

  EXPECT_EQ(plan.apply(1, 2), FaultAction::kNone);
  EXPECT_EQ(plan.apply(2, 1), FaultAction::kNone);  // other direction
  EXPECT_EQ(plan.apply(1, 2), FaultAction::kNone);
  EXPECT_EQ(plan.apply(1, 2), FaultAction::kDrop);  // the 3rd frame on 1->2
  EXPECT_EQ(plan.apply(1, 2), FaultAction::kNone);  // spent

  const FaultPlan::Stats stats = plan.stats();
  EXPECT_EQ(stats.frames, 5u);
  EXPECT_EQ(stats.dropped, 1u);
}

TEST(FaultPlan, WildcardMatchesEveryLinkButCountsPerLink) {
  FaultPlan plan(7);
  plan.duplicate_nth(kAnyLink, kAnyLink, 2);

  EXPECT_EQ(plan.apply(5, 6), FaultAction::kNone);
  EXPECT_EQ(plan.apply(8, 9), FaultAction::kNone);  // 1st on its own link
  EXPECT_EQ(plan.apply(5, 6), FaultAction::kDuplicate);
  EXPECT_EQ(plan.apply(8, 9), FaultAction::kNone);  // rule already spent
}

TEST(FaultPlan, ChanceRulesHonorTheirBudget) {
  FaultPlan plan(42);
  plan.drop_chance(kAnyLink, kAnyLink, 1.0, 3);

  std::uint64_t dropped = 0;
  for (int i = 0; i < 10; ++i) {
    if (plan.apply(0, 1) == FaultAction::kDrop) ++dropped;
  }
  EXPECT_EQ(dropped, 3u);
  EXPECT_EQ(plan.stats().dropped, 3u);
}

TEST(FaultPlan, UnboundedOrInvalidChanceRulesAreRejected) {
  FaultPlan plan(1);
  EXPECT_THROW(plan.drop_chance(0, 1, 0.5, 0), Error);   // no budget
  EXPECT_THROW(plan.drop_chance(0, 1, -0.1, 5), Error);  // bad probability
  EXPECT_THROW(plan.drop_chance(0, 1, 1.5, 5), Error);
}

TEST(FaultPlan, SameSeedSameSchedule) {
  const auto draw = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.drop_chance(kAnyLink, kAnyLink, 0.5, 1000);
    std::vector<int> actions;
    for (int i = 0; i < 64; ++i) {
      actions.push_back(static_cast<int>(plan.apply(0, 1)));
    }
    return actions;
  };
  EXPECT_EQ(draw(99), draw(99));
  EXPECT_NE(draw(99), draw(100));
}

TEST(FaultPlan, FirstMatchingRuleWins) {
  FaultPlan plan(7);
  plan.delay_nth(1, 2, 1);
  plan.drop_nth(1, 2, 1);  // shadowed by the delay rule
  EXPECT_EQ(plan.apply(1, 2), FaultAction::kDelay);
  EXPECT_EQ(plan.stats().delayed, 1u);
  EXPECT_EQ(plan.stats().dropped, 0u);
}

// ---------------------------------------------------------------------------
// Reliable links on a live mesh.

TEST(ReliableLinks, DroppedFramesAreRetransmittedAndDelivered) {
  const SchemaPtr schema = testutil::example1_schema();
  auto plan = std::make_shared<FaultPlan>(3);
  plan->drop_nth(0, 1, 2);
  plan->drop_chance(0, 1, 0.3, 10);

  MeshNetwork mesh(schema, reliable_options(plan));
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  std::mutex mutex;
  std::vector<Timestamp> seen;
  mesh.subscribe(1, "temperature >= 35",
                 [&](mesh::NodeId, SubscriptionId, const Event& event) {
                   const std::scoped_lock lock(mutex);
                   seen.push_back(event.time());
                 });
  mesh.wait_idle();

  constexpr int kEvents = 50;
  for (int i = 0; i < kEvents; ++i) {
    mesh.publish(0, make_event(schema, 40, i + 1));
  }
  mesh.wait_idle();

  {
    const std::scoped_lock lock(mutex);
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(kEvents));
  }
  EXPECT_GT(plan->stats().dropped, 0u);
  // Every drop forced at least one retransmission somewhere.
  EXPECT_GT(total(mesh, 2, &mesh::LinkStats::retransmits), 0u);
  EXPECT_EQ(mesh.first_error(), "");
  mesh.shutdown();
}

TEST(ReliableLinks, DuplicatedFramesAreDiscardedByTheReceiver) {
  const SchemaPtr schema = testutil::example1_schema();
  auto plan = std::make_shared<FaultPlan>(5);
  plan->duplicate_chance(0, 1, 1.0, 20);

  MeshNetwork mesh(schema, reliable_options(plan));
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  std::mutex mutex;
  std::vector<Timestamp> seen;
  mesh.subscribe(1, "temperature >= 35",
                 [&](mesh::NodeId, SubscriptionId, const Event& event) {
                   const std::scoped_lock lock(mutex);
                   seen.push_back(event.time());
                 });
  mesh.wait_idle();

  for (int i = 0; i < 30; ++i) {
    mesh.publish(0, make_event(schema, 40, i + 1));
  }
  mesh.wait_idle();

  {
    const std::scoped_lock lock(mutex);
    EXPECT_EQ(seen.size(), 30u);  // exactly once despite duplication
  }
  EXPECT_GT(plan->stats().duplicated, 0u);
  EXPECT_GT(total(mesh, 2, &mesh::LinkStats::dup_frames), 0u);
  EXPECT_EQ(mesh.first_error(), "");
  mesh.shutdown();
}

TEST(ReliableLinks, DelayedFramesAreReorderedButDeliveredExactlyOnce) {
  const SchemaPtr schema = testutil::example1_schema();
  auto plan = std::make_shared<FaultPlan>(11);
  plan->delay_chance(0, 1, 0.4, 15);

  MeshNetwork mesh(schema, reliable_options(plan));
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  std::mutex mutex;
  std::vector<Timestamp> seen;
  mesh.subscribe(1, "temperature >= 35",
                 [&](mesh::NodeId, SubscriptionId, const Event& event) {
                   const std::scoped_lock lock(mutex);
                   seen.push_back(event.time());
                 });
  mesh.wait_idle();

  for (int i = 0; i < 40; ++i) {
    mesh.publish(0, make_event(schema, 40, i + 1));
  }
  mesh.wait_idle();

  std::vector<Timestamp> sorted_seen;
  {
    const std::scoped_lock lock(mutex);
    sorted_seen = seen;
  }
  std::sort(sorted_seen.begin(), sorted_seen.end());
  ASSERT_EQ(sorted_seen.size(), 40u);
  for (std::size_t i = 0; i < sorted_seen.size(); ++i) {
    EXPECT_EQ(sorted_seen[i], static_cast<Timestamp>(i + 1));
  }
  EXPECT_GT(plan->stats().delayed, 0u);
  EXPECT_EQ(mesh.first_error(), "");
  mesh.shutdown();
}

TEST(ReliableLinks, SmallWindowStillDrainsUnderLoss) {
  // A window far smaller than the burst forces the sender to hold frames
  // back until acks arrive; combined with loss, wait_idle() must still
  // reach quiescence (every frame eventually acked).
  const SchemaPtr schema = testutil::example1_schema();
  auto plan = std::make_shared<FaultPlan>(17);
  plan->drop_chance(kAnyLink, kAnyLink, 0.2, 30);

  MeshOptions options = reliable_options(plan);
  options.link_window = 4;
  MeshNetwork mesh(schema, options);
  mesh.add_node();
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.connect(1, 2);
  mesh.start();

  std::mutex mutex;
  std::size_t count = 0;
  mesh.subscribe(2, "temperature >= 35",
                 [&](mesh::NodeId, SubscriptionId, const Event&) {
                   const std::scoped_lock lock(mutex);
                   ++count;
                 });
  mesh.wait_idle();

  constexpr int kEvents = 64;
  for (int i = 0; i < kEvents; ++i) {
    mesh.publish(0, make_event(schema, 40, i + 1));
  }
  mesh.wait_idle();

  {
    const std::scoped_lock lock(mutex);
    EXPECT_EQ(count, static_cast<std::size_t>(kEvents));
  }
  EXPECT_EQ(mesh.first_error(), "");
  mesh.shutdown();
}

TEST(ReliableLinks, StatsStayZeroOnAHealthyMesh) {
  const SchemaPtr schema = testutil::example1_schema();
  // A generous retransmit interval: this test asserts the counters stay
  // zero, and a worker descheduled past a 500us timer under parallel test
  // load would count a spurious (correct but unwanted here) retransmit.
  MeshOptions options = reliable_options();
  options.link_retransmit_interval = std::chrono::milliseconds(200);
  MeshNetwork mesh(schema, options);
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  mesh.subscribe(1, "temperature >= 35",
                 [](mesh::NodeId, SubscriptionId, const Event&) {});
  mesh.wait_idle();
  for (int i = 0; i < 10; ++i) {
    mesh.publish(0, make_event(schema, 40, i + 1));
  }
  mesh.wait_idle();

  EXPECT_EQ(total(mesh, 2, &mesh::LinkStats::dup_frames), 0u);
  EXPECT_EQ(total(mesh, 2, &mesh::LinkStats::gap_frames), 0u);
  EXPECT_EQ(mesh.first_error(), "");
  mesh.shutdown();
}

TEST(ReliableLinks, ShutdownWaitsForUnackedFramesUnderLoss) {
  // Publish a burst into lossy links and shut down immediately: shutdown
  // must wait for retransmission to finish, so nothing is lost.
  const SchemaPtr schema = testutil::example1_schema();
  auto plan = std::make_shared<FaultPlan>(23);
  plan->drop_chance(kAnyLink, kAnyLink, 0.25, 25);

  MeshNetwork mesh(schema, reliable_options(plan));
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  std::mutex mutex;
  std::size_t count = 0;
  mesh.subscribe(1, "temperature >= 35",
                 [&](mesh::NodeId, SubscriptionId, const Event&) {
                   const std::scoped_lock lock(mutex);
                   ++count;
                 });
  mesh.wait_idle();

  constexpr int kEvents = 40;
  for (int i = 0; i < kEvents; ++i) {
    mesh.publish(0, make_event(schema, 40, i + 1));
  }
  mesh.shutdown();  // no wait_idle: shutdown itself must drain the links

  EXPECT_EQ(count, static_cast<std::size_t>(kEvents));
  EXPECT_EQ(mesh.first_error(), "");
}

TEST(ReliableLinks, FaultCountersSurfaceRetransmitsDupsAndGaps) {
  // One seeded plan injecting both loss and duplication: after the burst
  // drains, retransmits (sender gave a frame a second try), dup_frames
  // (receiver discarded a redelivery), and gap_frames (a frame arrived
  // ahead of a dropped predecessor) are all nonzero — and the same totals
  // surface through the observability snapshot as labeled link metrics.
  const SchemaPtr schema = testutil::example1_schema();
  auto plan = std::make_shared<FaultPlan>(31);
  plan->drop_chance(0, 1, 0.3, 20);
  plan->duplicate_chance(0, 1, 0.3, 20);

  MeshNetwork mesh(schema, reliable_options(plan));
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  std::mutex mutex;
  std::size_t count = 0;
  mesh.subscribe(1, "temperature >= 35",
                 [&](mesh::NodeId, SubscriptionId, const Event&) {
                   const std::scoped_lock lock(mutex);
                   ++count;
                 });
  mesh.wait_idle();

  constexpr int kEvents = 80;
  for (int i = 0; i < kEvents; ++i) {
    mesh.publish(0, make_event(schema, 40, i + 1));
  }
  mesh.wait_idle();

  {
    const std::scoped_lock lock(mutex);
    EXPECT_EQ(count, static_cast<std::size_t>(kEvents));
  }
  EXPECT_GT(plan->stats().dropped, 0u);
  EXPECT_GT(plan->stats().duplicated, 0u);

  const std::uint64_t retransmits =
      total(mesh, 2, &mesh::LinkStats::retransmits);
  const std::uint64_t dups = total(mesh, 2, &mesh::LinkStats::dup_frames);
  const std::uint64_t gaps = total(mesh, 2, &mesh::LinkStats::gap_frames);
  EXPECT_GT(retransmits, 0u);
  EXPECT_GT(dups, 0u);
  EXPECT_GT(gaps, 0u);

  // The obs snapshot synthesizes the same counters, per directed link.
  const obs::StatsSnapshot snapshot = mesh.stats_snapshot();
  const auto link_total = [&](const char* base) {
    std::int64_t sum = 0;
    for (const obs::MetricSnapshot& metric : snapshot.metrics) {
      if (metric.name.rfind(base, 0) == 0) sum += metric.value;
    }
    return sum;
  };
  EXPECT_EQ(link_total("genas_mesh_link_retransmits_total"),
            static_cast<std::int64_t>(retransmits));
  EXPECT_EQ(link_total("genas_mesh_link_dup_frames_total"),
            static_cast<std::int64_t>(dups));
  EXPECT_EQ(link_total("genas_mesh_link_gap_frames_total"),
            static_cast<std::int64_t>(gaps));

  EXPECT_EQ(mesh.first_error(), "");
  mesh.shutdown();
}

TEST(ReliableLinks, FaultCountersStayZeroOnACleanRun) {
  const SchemaPtr schema = testutil::example1_schema();
  // See StatsStayZeroOnAHealthyMesh: zero-counter assertions need a timer
  // that cannot fire from scheduling noise alone.
  MeshOptions options = reliable_options();
  options.link_retransmit_interval = std::chrono::milliseconds(200);
  MeshNetwork mesh(schema, options);
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  mesh.subscribe(1, "temperature >= 35",
                 [](mesh::NodeId, SubscriptionId, const Event&) {});
  mesh.wait_idle();
  for (int i = 0; i < 20; ++i) {
    mesh.publish(0, make_event(schema, 40, i + 1));
  }
  mesh.wait_idle();

  EXPECT_EQ(total(mesh, 2, &mesh::LinkStats::retransmits), 0u);
  EXPECT_EQ(total(mesh, 2, &mesh::LinkStats::dup_frames), 0u);
  EXPECT_EQ(total(mesh, 2, &mesh::LinkStats::gap_frames), 0u);
  EXPECT_EQ(mesh.first_error(), "");
  mesh.shutdown();
}

}  // namespace
}  // namespace genas
