// Tests for priority-weighted profile distributions (V2/V3 with weights).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/filter_engine.hpp"
#include "dist/shapes.hpp"
#include "tree/expected_cost.hpp"
#include "tree/profile_tree.hpp"

namespace genas {
namespace {

SchemaPtr schema1() {
  return SchemaBuilder().add_integer("x", 0, 99).build();
}

TEST(ProfileWeights, DefaultsToOneAndValidates) {
  const SchemaPtr schema = schema1();
  ProfileSet set(schema);
  const ProfileId a =
      set.add(ProfileBuilder(schema).where("x", Op::kEq, 1).build());
  EXPECT_DOUBLE_EQ(set.weight(a), 1.0);
  set.set_weight(a, 5.0);
  EXPECT_DOUBLE_EQ(set.weight(a), 5.0);
  EXPECT_THROW(set.set_weight(a, 0.0), Error);
  EXPECT_THROW(set.set_weight(99, 1.0), Error);
  set.remove(a);
  EXPECT_THROW(set.weight(a), Error);
  EXPECT_THROW(set.set_weight(a, 2.0), Error);
}

TEST(ProfileWeights, WeightChangeBumpsVersion) {
  const SchemaPtr schema = schema1();
  ProfileSet set(schema);
  const ProfileId a =
      set.add(ProfileBuilder(schema).where("x", Op::kEq, 1).build());
  const std::uint64_t v = set.version();
  set.set_weight(a, 2.0);
  EXPECT_GT(set.version(), v);
}

TEST(ProfileWeights, HeavyProfileScannedFirstUnderV2) {
  const SchemaPtr schema = schema1();
  ProfileSet set(schema);
  set.add(ProfileBuilder(schema).where("x", Op::kEq, 10).build());
  const ProfileId heavy =
      set.add(ProfileBuilder(schema).where("x", Op::kEq, 50).build());
  set.add(ProfileBuilder(schema).where("x", Op::kEq, 90).build());

  TreeConfig config;
  config.value_order = ValueOrder::kProfileProbability;

  // Unweighted: ties resolve to natural order -> value 10 scanned first.
  {
    const ProfileTree tree = ProfileTree::build(set, config);
    const auto& root = tree.nodes().back();
    // Cells: gap, [10], gap, [50], gap, [90], gap.
    ASSERT_EQ(root.cells.size(), 7u);
    EXPECT_EQ(root.scan_rank[1], 1u);
    EXPECT_EQ(root.scan_rank[3], 2u);
    EXPECT_EQ(root.scan_rank[5], 3u);
  }

  // Weighting the middle profile moves its value to the front of the scan.
  set.set_weight(heavy, 10.0);
  {
    const ProfileTree tree = ProfileTree::build(set, config);
    const auto& root = tree.nodes().back();
    EXPECT_EQ(root.scan_rank[3], 1u);
    EXPECT_EQ(root.scan_rank[1], 2u);
    EXPECT_EQ(root.scan_rank[5], 3u);
  }
}

TEST(ProfileWeights, PriorityLowersThatProfilesExpectedOps) {
  const SchemaPtr schema = schema1();
  const JointDistribution joint =
      JointDistribution::independent(schema, {shapes::equal(100)});

  ProfileSet set(schema);
  std::vector<ProfileId> ids;
  for (int v = 0; v < 20; ++v) {
    ids.push_back(
        set.add(ProfileBuilder(schema).where("x", Op::kEq, 5 * v).build()));
  }
  const ProfileId vip = ids[15];

  TreeConfig config;
  config.value_order = ValueOrder::kProfileProbability;
  config.event_distribution = joint;

  const double before =
      expected_cost(ProfileTree::build(set, config), joint)
          .per_profile_ops[vip];
  set.set_weight(vip, 100.0);
  const double after =
      expected_cost(ProfileTree::build(set, config), joint)
          .per_profile_ops[vip];
  EXPECT_LT(after, before);
  EXPECT_DOUBLE_EQ(after, 1.0);  // scanned first
}

TEST(ProfileWeights, EngineExposesPriorities) {
  const SchemaPtr schema = schema1();
  EngineOptions options;
  options.policy.value_order = ValueOrder::kProfileProbability;
  FilterEngine engine(schema, options);
  const ProfileId a = engine.subscribe("x = 3");
  engine.subscribe("x = 7");
  (void)engine.tree();
  const std::uint64_t builds = engine.rebuild_count();
  engine.set_priority(a, 4.0);
  (void)engine.tree();  // weight change invalidates the tree
  EXPECT_EQ(engine.rebuild_count(), builds + 1);
  EXPECT_THROW(engine.set_priority(77, 1.0), Error);
}

}  // namespace
}  // namespace genas
