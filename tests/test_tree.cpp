// Structural and matching tests for the profile tree on the paper's
// Example 1.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dist/shapes.hpp"
#include "test_util.hpp"
#include "tree/profile_tree.hpp"

namespace genas {
namespace {

class Example1Tree : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();
  ProfileSet profiles_ = testutil::example1_profiles(schema_);

  Event make_event(std::int64_t t, std::int64_t h, std::int64_t r) {
    return Event::from_pairs(
        schema_, {{"temperature", t}, {"humidity", h}, {"radiation", r}});
  }
};

TEST_F(Example1Tree, PaperEventMatchesP2P5) {
  const ProfileTree tree = ProfileTree::build(profiles_, {});
  // Paper §3: event(30, 90, 2) follows [30,35) -> [90,100] -> (*) and is
  // matched by P2 and P5.
  const TreeMatch match = tree.match(make_event(30, 90, 2));
  ASSERT_NE(match.matched, nullptr);
  EXPECT_EQ(*match.matched, (std::vector<ProfileId>{1, 4}));
  EXPECT_GT(match.operations, 0u);
}

TEST_F(Example1Tree, AllFiveProfilesReachable) {
  const ProfileTree tree = ProfileTree::build(profiles_, {});
  // P1,P2,P3,P5 all match (40, 95, 40); P4 matches (-25, 3, 70).
  const TreeMatch hot = tree.match(make_event(40, 95, 40));
  ASSERT_NE(hot.matched, nullptr);
  EXPECT_EQ(*hot.matched, (std::vector<ProfileId>{0, 1, 2, 4}));

  const TreeMatch cold = tree.match(make_event(-25, 3, 70));
  ASSERT_NE(cold.matched, nullptr);
  EXPECT_EQ(*cold.matched, (std::vector<ProfileId>{3}));
}

TEST_F(Example1Tree, ZeroSubdomainEventRejectedAtRoot) {
  const ProfileTree tree = ProfileTree::build(profiles_, {});
  // Temperature 0 lies in D_0 of a1 ([-19,29]): single-path rejection.
  const TreeMatch miss = tree.match(make_event(0, 90, 40));
  EXPECT_EQ(miss.matched, nullptr);
  EXPECT_EQ(miss.matched_count(), 0u);
}

TEST_F(Example1Tree, PartialMatchRejectedDeeper) {
  const ProfileTree tree = ProfileTree::build(profiles_, {});
  // Temperature fits P4 but humidity 50 kills it.
  const TreeMatch miss = tree.match(make_event(-25, 50, 70));
  EXPECT_EQ(miss.matched, nullptr);
}

TEST_F(Example1Tree, RootHasThePaperEdges) {
  const ProfileTree tree = ProfileTree::build(profiles_, {});
  ASSERT_FALSE(tree.nodes().empty());
  const ProfileTree::Node& root =
      tree.nodes()[static_cast<std::size_t>(tree.root())];
  EXPECT_EQ(root.attribute, schema_->id_of("temperature"));
  // Cells: [-30,-20] edge, [-19,29] gap, [30,34] edge, [35,50] edge.
  ASSERT_EQ(root.cells.size(), 4u);
  EXPECT_EQ(root.cells[0], Interval(0, 10));
  EXPECT_EQ(root.cells[1], Interval(11, 59));
  EXPECT_EQ(root.cells[2], Interval(60, 64));
  EXPECT_EQ(root.cells[3], Interval(65, 80));
  EXPECT_EQ(root.child[1], ProfileTree::kMiss);
  EXPECT_NE(root.child[0], ProfileTree::kMiss);
}

TEST_F(Example1Tree, MemoizationSharesSubtrees) {
  const ProfileTree tree = ProfileTree::build(profiles_, {});
  // The a2>=90 subtree under [30,35) and [35,50] overlaps; sharing must
  // occur somewhere in this workload.
  EXPECT_GT(tree.build_stats().memo_hits, 0u);
  EXPECT_EQ(tree.build_stats().node_count, tree.nodes().size());
  EXPECT_EQ(tree.build_stats().leaf_count, tree.leaves().size());
}

TEST_F(Example1Tree, AttributeReorderBuildsValidTree) {
  TreeConfig config;
  config.attribute_order = {1, 0, 2};  // humidity first (paper Example 3)
  const ProfileTree tree = ProfileTree::build(profiles_, config);
  const ProfileTree::Node& root =
      tree.nodes()[static_cast<std::size_t>(tree.root())];
  EXPECT_EQ(root.attribute, schema_->id_of("humidity"));
  const TreeMatch match = tree.match(make_event(30, 90, 2));
  ASSERT_NE(match.matched, nullptr);
  EXPECT_EQ(*match.matched, (std::vector<ProfileId>{1, 4}));
}

TEST_F(Example1Tree, ConfigValidation) {
  TreeConfig bad_order;
  bad_order.attribute_order = {0, 1};  // wrong size
  EXPECT_THROW(ProfileTree::build(profiles_, bad_order), Error);

  TreeConfig repeated;
  repeated.attribute_order = {0, 0, 1};
  EXPECT_THROW(ProfileTree::build(profiles_, repeated), Error);

  TreeConfig out_of_range;
  out_of_range.attribute_order = {0, 1, 7};
  EXPECT_THROW(ProfileTree::build(profiles_, out_of_range), Error);

  TreeConfig needs_dist;
  needs_dist.value_order = ValueOrder::kEventProbability;
  EXPECT_THROW(ProfileTree::build(profiles_, needs_dist), Error);
}

TEST_F(Example1Tree, EmptyProfileSetMatchesNothing) {
  ProfileSet empty(schema_);
  const ProfileTree tree = ProfileTree::build(empty, {});
  EXPECT_EQ(tree.root(), ProfileTree::kMiss);
  const TreeMatch match = tree.match(make_event(0, 0, 1));
  EXPECT_EQ(match.matched, nullptr);
  EXPECT_EQ(match.operations, 0u);
}

TEST_F(Example1Tree, MatchAllProfileFlowsThroughStarEdges) {
  ProfileSet set(schema_);
  set.add(ProfileBuilder(schema_).build());  // don't-care everywhere
  const ProfileTree tree = ProfileTree::build(set, {});
  const TreeMatch match = tree.match(make_event(0, 0, 1));
  ASSERT_NE(match.matched, nullptr);
  EXPECT_EQ(match.matched->size(), 1u);
}

TEST_F(Example1Tree, SourceVersionTracksProfileSet) {
  const ProfileTree tree = ProfileTree::build(profiles_, {});
  EXPECT_EQ(tree.source_version(), profiles_.version());
  EXPECT_EQ(tree.profile_count(), 5u);
}

TEST_F(Example1Tree, DumpMentionsStructure) {
  const ProfileTree tree = ProfileTree::build(profiles_, {});
  const std::string dump = tree.dump();
  EXPECT_NE(dump.find("temperature"), std::string::npos);
  EXPECT_NE(dump.find("leaf"), std::string::npos);
  EXPECT_NE(dump.find("miss"), std::string::npos);
}

TEST_F(Example1Tree, ChildrenPrecedeParents) {
  const ProfileTree tree = ProfileTree::build(profiles_, {});
  for (std::size_t i = 0; i < tree.nodes().size(); ++i) {
    for (const std::int32_t child : tree.nodes()[i].child) {
      if (child >= 0) {
        EXPECT_LT(child, static_cast<std::int32_t>(i));
      }
    }
  }
  EXPECT_EQ(tree.root(), static_cast<std::int32_t>(tree.nodes().size()) - 1);
}

}  // namespace
}  // namespace genas
