// Unit tests for the profile/event text parser.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "profile/parser.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();
};

TEST_F(ParserTest, ComparisonOperators) {
  const Profile p =
      parse_profile(schema_, "temperature >= 35 && humidity = 90");
  EXPECT_EQ(p.constrained_count(), 2u);
  ASSERT_NE(p.predicate(0), nullptr);
  EXPECT_EQ(p.predicate(0)->accepted(), IntervalSet({{65, 80}}));
  ASSERT_NE(p.predicate(1), nullptr);
  EXPECT_EQ(p.predicate(1)->accepted(), IntervalSet::point(90));
}

TEST_F(ParserTest, AllOperatorSpellings) {
  EXPECT_EQ(parse_profile(schema_, "humidity == 5").predicate(1)->accepted(),
            IntervalSet::point(5));
  EXPECT_EQ(parse_profile(schema_, "humidity != 0").predicate(1)->accepted(),
            IntervalSet({{1, 100}}));
  EXPECT_EQ(parse_profile(schema_, "humidity < 10").predicate(1)->accepted(),
            IntervalSet({{0, 9}}));
  EXPECT_EQ(parse_profile(schema_, "humidity <= 10").predicate(1)->accepted(),
            IntervalSet({{0, 10}}));
  EXPECT_EQ(parse_profile(schema_, "humidity > 90").predicate(1)->accepted(),
            IntervalSet({{91, 100}}));
  EXPECT_EQ(parse_profile(schema_, "humidity >= 90").predicate(1)->accepted(),
            IntervalSet({{90, 100}}));
}

TEST_F(ParserTest, RangeAndSetForms) {
  const Profile range = parse_profile(schema_, "radiation in [35, 50]");
  EXPECT_EQ(range.predicate(2)->accepted(), IntervalSet({{34, 49}}));

  const Profile outside = parse_profile(schema_, "radiation not in [35,50]");
  EXPECT_EQ(outside.predicate(2)->accepted(),
            IntervalSet({{0, 33}, {50, 99}}));

  const Profile set = parse_profile(schema_, "humidity in {1, 5, 9}");
  EXPECT_EQ(set.predicate(1)->accepted(),
            IntervalSet({{1, 1}, {5, 5}, {9, 9}}));
}

TEST_F(ParserTest, MatchAllForms) {
  EXPECT_EQ(parse_profile(schema_, "*").constrained_count(), 0u);
  EXPECT_EQ(parse_profile(schema_, "  ").constrained_count(), 0u);
}

TEST_F(ParserTest, NegativeNumbersParse) {
  const Profile p = parse_profile(schema_, "temperature in [-30, -20]");
  EXPECT_EQ(p.predicate(0)->accepted(), IntervalSet({{0, 10}}));
  // "temperature <= -20": the '=' inside "<=" must win over the '-' sign.
  const Profile q = parse_profile(schema_, "temperature <= -20");
  EXPECT_EQ(q.predicate(0)->accepted(), IntervalSet({{0, 10}}));
}

TEST_F(ParserTest, ParseFailures) {
  EXPECT_THROW(parse_profile(schema_, "pressure = 1"), Error);
  EXPECT_THROW(parse_profile(schema_, "humidity"), Error);
  EXPECT_THROW(parse_profile(schema_, "humidity in [1"), Error);
  EXPECT_THROW(parse_profile(schema_, "humidity in [1]"), Error);
  EXPECT_THROW(parse_profile(schema_, "humidity in (1,2)"), Error);
  EXPECT_THROW(parse_profile(schema_, "humidity = high"), Error);
  EXPECT_THROW(parse_profile(schema_, "humidity = 200"), Error);  // domain
  EXPECT_THROW(parse_profile(schema_, "humidity not = 5"), Error);
  EXPECT_THROW(parse_profile(nullptr, "humidity = 5"), Error);
}

TEST_F(ParserTest, EventParsing) {
  const Event event = parse_event(
      schema_, "temperature = 30; humidity = 90; radiation = 2", 7);
  EXPECT_EQ(event.time(), 7);
  EXPECT_EQ(event.value("temperature").as_int(), 30);
  EXPECT_EQ(event.value("radiation").as_int(), 2);
}

TEST_F(ParserTest, EventParsingFailures) {
  EXPECT_THROW(parse_event(schema_, "temperature = 30"), Error);  // missing
  EXPECT_THROW(
      parse_event(schema_, "temperature: 30; humidity = 9; radiation = 2"),
      Error);
  EXPECT_THROW(
      parse_event(schema_, "bogus = 1; humidity = 9; radiation = 2"), Error);
}

TEST_F(ParserTest, CategoricalScalars) {
  const SchemaPtr schema = SchemaBuilder()
                               .add_categorical("state", {"ok", "warn", "err"})
                               .add_integer("code", 0, 9)
                               .build();
  const Profile p = parse_profile(schema, "state = warn && code >= 5");
  EXPECT_EQ(p.predicate(0)->accepted(), IntervalSet::point(1));
  const Event e = parse_event(schema, "state = err; code = 3");
  EXPECT_EQ(e.index(0), 2);
}

}  // namespace
}  // namespace genas
