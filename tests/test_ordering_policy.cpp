// Tests for OrderingPolicy -> TreeConfig materialization.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/ordering_policy.hpp"
#include "dist/shapes.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class OrderingPolicyTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();
  ProfileSet profiles_ = testutil::example1_profiles(schema_);

  JointDistribution uniform_joint() {
    return JointDistribution::independent(
        schema_,
        {shapes::equal(81), shapes::equal(101), shapes::equal(100)});
  }
};

TEST_F(OrderingPolicyTest, DefaultPolicyNeedsNoDistribution) {
  const OrderingPolicy policy;
  const TreeConfig config = make_tree_config(profiles_, policy, std::nullopt);
  EXPECT_TRUE(config.attribute_order.empty());  // schema order
  EXPECT_EQ(config.value_order, ValueOrder::kNaturalAscending);
  EXPECT_NO_THROW(ProfileTree::build(profiles_, config));
}

TEST_F(OrderingPolicyTest, V1RequiresDistribution) {
  OrderingPolicy policy;
  policy.value_order = ValueOrder::kEventProbability;
  EXPECT_THROW(make_tree_config(profiles_, policy, std::nullopt), Error);
  EXPECT_NO_THROW(make_tree_config(profiles_, policy, uniform_joint()));
}

TEST_F(OrderingPolicyTest, A2RequiresDistributionButA1DoesNot) {
  OrderingPolicy a1;
  a1.attribute_measure = AttributeMeasure::kA1;
  EXPECT_NO_THROW(make_tree_config(profiles_, a1, std::nullopt));

  OrderingPolicy a2;
  a2.attribute_measure = AttributeMeasure::kA2;
  EXPECT_THROW(make_tree_config(profiles_, a2, std::nullopt), Error);
}

TEST_F(OrderingPolicyTest, DirectionControlsOrder) {
  OrderingPolicy desc;
  desc.attribute_measure = AttributeMeasure::kA1;
  desc.direction = OrderDirection::kDescending;
  OrderingPolicy asc = desc;
  asc.direction = OrderDirection::kAscending;

  const auto order_desc =
      make_tree_config(profiles_, desc, std::nullopt).attribute_order;
  const auto order_asc =
      make_tree_config(profiles_, asc, std::nullopt).attribute_order;
  EXPECT_EQ(order_desc, (std::vector<AttributeId>{1, 0, 2}));
  EXPECT_EQ(order_asc, (std::vector<AttributeId>{2, 0, 1}));
}

TEST_F(OrderingPolicyTest, A3ProducesAPermutation) {
  OrderingPolicy a3;
  a3.attribute_measure = AttributeMeasure::kA3;
  const auto order =
      make_tree_config(profiles_, a3, uniform_joint()).attribute_order;
  ASSERT_EQ(order.size(), 3u);
  std::vector<AttributeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<AttributeId>{0, 1, 2}));
}

TEST_F(OrderingPolicyTest, BuildTreeConvenienceProducesMatchingTree) {
  OrderingPolicy policy;
  policy.value_order = ValueOrder::kCombinedProbability;
  policy.strategy = SearchStrategy::kBinary;
  policy.attribute_measure = AttributeMeasure::kA2;
  const ProfileTree tree = build_tree(profiles_, policy, uniform_joint());
  const Event event = Event::from_pairs(
      schema_, {{"temperature", 30}, {"humidity", 90}, {"radiation", 2}});
  const TreeMatch match = tree.match(event);
  ASSERT_NE(match.matched, nullptr);
  EXPECT_EQ(*match.matched, (std::vector<ProfileId>{1, 4}));
}

TEST_F(OrderingPolicyTest, LabelsAreDescriptive) {
  OrderingPolicy policy;
  policy.value_order = ValueOrder::kEventProbability;
  policy.strategy = SearchStrategy::kBinary;
  policy.attribute_measure = AttributeMeasure::kA2;
  policy.direction = OrderDirection::kDescending;
  const std::string label = policy.label();
  EXPECT_NE(label.find("V1"), std::string::npos);
  EXPECT_NE(label.find("binary"), std::string::npos);
  EXPECT_NE(label.find("A2"), std::string::npos);
  EXPECT_NE(label.find("descending"), std::string::npos);
}

}  // namespace
}  // namespace genas
