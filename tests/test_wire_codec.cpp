// Tests for the binary wire codec: property-style encode/decode oracles
// over randomized schemas/events/profiles, plus the malformed-input paths —
// every truncated, trailing-garbage, or corrupted buffer must be rejected
// with Error{kParse}, never crash or mis-decode silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "profile/parser.hpp"
#include "sim/workload.hpp"
#include "test_util.hpp"
#include "wire/codec.hpp"

namespace genas {
namespace {

using Frame = std::vector<std::uint8_t>;

/// Decode must reject the buffer with Error{kParse} specifically.
void expect_parse_failure(const Frame& frame, const SchemaPtr& schema,
                          const std::string& context) {
  try {
    wire::decode_message(frame, schema);
    FAIL() << context << ": malformed frame decoded without error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse) << context << ": " << e.what();
  }
}

/// Structural equality of two profiles over the same schema: the same
/// attributes constrained, with identical operators and accepted sets.
void expect_same_profile(const Profile& original, const Profile& decoded) {
  ASSERT_EQ(original.predicates().size(), decoded.predicates().size());
  for (std::size_t p = 0; p < original.predicates().size(); ++p) {
    const Predicate& a = original.predicates()[p];
    const Predicate& b = decoded.predicates()[p];
    EXPECT_EQ(a.attribute(), b.attribute());
    EXPECT_EQ(a.op(), b.op());
    EXPECT_EQ(a.accepted(), b.accepted());
  }
}

/// Random integer-attribute schema (1..4 attributes, varying domains).
SchemaPtr random_int_schema(Rng& rng) {
  SchemaBuilder builder;
  const std::size_t attributes = 1 + rng.below(4);
  for (std::size_t a = 0; a < attributes; ++a) {
    const std::int64_t lo = rng.range(-40, 10);
    const std::int64_t hi = lo + 1 + static_cast<std::int64_t>(rng.below(120));
    builder.add_integer("a" + std::to_string(a), lo, hi);
  }
  return builder.build();
}

/// Random event as raw domain indices (schema-agnostic, unlike samplers).
Event random_event(const SchemaPtr& schema, Rng& rng) {
  std::vector<DomainIndex> indices;
  indices.reserve(schema->attribute_count());
  for (AttributeId a = 0; a < schema->attribute_count(); ++a) {
    indices.push_back(static_cast<DomainIndex>(
        rng.below(static_cast<std::uint64_t>(
            schema->attribute(a).domain.size()))));
  }
  return Event::from_indices(schema, std::move(indices),
                             static_cast<Timestamp>(rng.below(1 << 20)));
}

TEST(WireCodec, RandomizedProfileAndEventRoundTrips) {
  Rng rng(2026);
  for (int round = 0; round < 20; ++round) {
    const SchemaPtr schema = random_int_schema(rng);

    ProfileWorkloadOptions options;
    options.count = 25;
    options.dont_care_probability = 0.3;
    options.equality_only = (round % 2 == 0);
    options.range_width_mean = 0.2;
    options.seed = static_cast<std::uint64_t>(round) + 1;
    const ProfileSet profiles = generate_profiles(
        schema, make_profile_distributions(schema, {"gauss"}), options);

    for (const ProfileId id : profiles.active_ids()) {
      const Profile& original = profiles.profile(id);
      const wire::Message decoded =
          wire::decode_message(wire::frame_profile(original), schema);
      ASSERT_TRUE(std::holds_alternative<wire::ProfileMsg>(decoded));
      expect_same_profile(original,
                          std::get<wire::ProfileMsg>(decoded).profile);
    }

    for (int e = 0; e < 50; ++e) {
      const Event original = random_event(schema, rng);
      const Frame frame = wire::frame_event(original);
      EXPECT_EQ(wire::peek_type(frame), wire::MessageType::kEvent);
      const wire::Message decoded = wire::decode_message(frame, schema);
      ASSERT_TRUE(std::holds_alternative<wire::EventMsg>(decoded));
      const Event& roundtrip = std::get<wire::EventMsg>(decoded).event;
      EXPECT_EQ(original.indices(), roundtrip.indices());
      EXPECT_EQ(original.time(), roundtrip.time());
    }
  }
}

TEST(WireCodec, SchemaRoundTripsAllDomainKinds) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    SchemaBuilder builder;
    const std::size_t attributes = 1 + rng.below(5);
    for (std::size_t a = 0; a < attributes; ++a) {
      const std::string name = "attr_" + std::to_string(a);
      switch (rng.below(3)) {
        case 0: {
          const std::int64_t lo = rng.range(-100, 100);
          builder.add_integer(name,
                              lo, lo + static_cast<std::int64_t>(rng.below(50)));
          break;
        }
        case 1: {
          // Exact binary fractions: f64 fields are bit-exact on the wire,
          // and these keep the domain size integral for SchemaBuilder.
          const double resolution = 0.125 * static_cast<double>(
              1 + rng.below(4));
          const double lo = static_cast<double>(rng.range(-4, 4));
          const double hi = lo + resolution * static_cast<double>(
              1 + rng.below(32));
          builder.add_real(name, lo, hi, resolution);
          break;
        }
        default: {
          // Category names may contain anything a length-prefixed string
          // can carry — commas, blanks, backslashes, high bytes.
          std::vector<std::string> categories;
          const std::size_t count = 1 + rng.below(5);
          for (std::size_t c = 0; c < count; ++c) {
            std::string category = "c" + std::to_string(c);
            if (rng.chance(0.5)) category += ", with\\ extras\t\xc3\xa9";
            categories.push_back(std::move(category));
          }
          builder.add_categorical(name, std::move(categories));
          break;
        }
      }
    }
    const SchemaPtr schema = builder.build();

    const wire::Message decoded =
        wire::decode_message(wire::frame_schema(*schema), nullptr);
    ASSERT_TRUE(std::holds_alternative<wire::SchemaMsg>(decoded));
    const SchemaPtr& roundtrip = std::get<wire::SchemaMsg>(decoded).schema;
    EXPECT_EQ(schema->to_string(), roundtrip->to_string());
    ASSERT_EQ(schema->attribute_count(), roundtrip->attribute_count());
    for (AttributeId a = 0; a < schema->attribute_count(); ++a) {
      const Domain& original = schema->attribute(a).domain;
      const Domain& restored = roundtrip->attribute(a).domain;
      ASSERT_EQ(original.kind(), restored.kind());
      ASSERT_EQ(original.size(), restored.size());
      for (DomainIndex i = 0; i < original.size(); ++i) {
        EXPECT_EQ(original.value_at(i), restored.value_at(i));
      }
    }
  }
}

TEST(WireCodec, SubscribeAndUnsubscribeCarryKeys) {
  const SchemaPtr schema = testutil::example1_schema();
  const Profile profile =
      parse_profile(schema, "temperature >= 35 && humidity >= 90");

  const wire::Message sub = wire::decode_message(
      wire::frame_subscribe(0xDEADBEEFCAFEULL, profile), schema);
  ASSERT_TRUE(std::holds_alternative<wire::SubscribeMsg>(sub));
  EXPECT_EQ(std::get<wire::SubscribeMsg>(sub).key, 0xDEADBEEFCAFEULL);
  expect_same_profile(profile, std::get<wire::SubscribeMsg>(sub).profile);

  const wire::Message unsub =
      wire::decode_message(wire::frame_unsubscribe(42), schema);
  ASSERT_TRUE(std::holds_alternative<wire::UnsubscribeMsg>(unsub));
  EXPECT_EQ(std::get<wire::UnsubscribeMsg>(unsub).key, 42u);
}

TEST(WireCodec, EveryTruncationIsRejected) {
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<Frame> frames = {
      wire::frame_schema(*schema),
      wire::frame_event(Event::from_pairs(schema, {{"temperature", 20},
                                                   {"humidity", 50},
                                                   {"radiation", 3}})),
      wire::frame_profile(parse_profile(schema, "temperature >= 35")),
      wire::frame_subscribe(7, parse_profile(schema, "humidity <= 5")),
      wire::frame_unsubscribe(7),
      wire::frame_delivery(11, Event::from_pairs(schema, {{"temperature", -5},
                                                          {"humidity", 40},
                                                          {"radiation", 9}})),
      wire::frame_flush(3),
      wire::frame_flush_done(3),
      wire::frame_link(17, wire::frame_unsubscribe(7)),
      wire::frame_link_ack(17),
      wire::frame_hello(0xFEEDULL),
      wire::frame_hello_ack(true, 0xFEEDULL, 42),
  };
  for (const Frame& frame : frames) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      const Frame truncated(frame.begin(),
                            frame.begin() + static_cast<std::ptrdiff_t>(cut));
      expect_parse_failure(truncated, schema,
                           "truncated at " + std::to_string(cut));
    }
    Frame padded = frame;
    padded.push_back(0);
    expect_parse_failure(padded, schema, "trailing garbage");
  }
}

TEST(WireCodec, CorruptHeadersAreRejected) {
  const SchemaPtr schema = testutil::example1_schema();
  const Frame good = wire::frame_unsubscribe(1);

  Frame bad_magic = good;
  bad_magic[0] ^= 0xFF;
  expect_parse_failure(bad_magic, schema, "bad magic");
  EXPECT_THROW(wire::peek_type(bad_magic), Error);

  Frame bad_version = good;
  bad_version[2] = wire::kWireVersion + 1;
  expect_parse_failure(bad_version, schema, "future version");

  Frame bad_type = good;
  bad_type[3] = 99;
  expect_parse_failure(bad_type, schema, "unknown type");

  Frame bad_length = good;
  bad_length[4] ^= 0x01;  // length field no longer matches the buffer
  expect_parse_failure(bad_length, schema, "length mismatch");

  expect_parse_failure(Frame{}, schema, "empty buffer");
}

TEST(WireCodec, StreamingFramesRoundTrip) {
  const SchemaPtr schema = testutil::example1_schema();
  const Event event = Event::from_pairs(
      schema, {{"temperature", 42}, {"humidity", 91}, {"radiation", 8}}, 17);

  const wire::Message delivery =
      wire::decode_message(wire::frame_delivery(0xDEADBEEFCAFEULL, event),
                           schema);
  ASSERT_TRUE(std::holds_alternative<wire::DeliveryMsg>(delivery));
  EXPECT_EQ(std::get<wire::DeliveryMsg>(delivery).key, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(std::get<wire::DeliveryMsg>(delivery).event.indices(),
            event.indices());
  EXPECT_EQ(std::get<wire::DeliveryMsg>(delivery).event.time(), event.time());

  const wire::Message flush =
      wire::decode_message(wire::frame_flush(0xFFFFFFFFFFFFFFFFULL), schema);
  ASSERT_TRUE(std::holds_alternative<wire::FlushMsg>(flush));
  EXPECT_EQ(std::get<wire::FlushMsg>(flush).token, 0xFFFFFFFFFFFFFFFFULL);

  const wire::Message done =
      wire::decode_message(wire::frame_flush_done(12345), schema);
  ASSERT_TRUE(std::holds_alternative<wire::FlushDoneMsg>(done));
  EXPECT_EQ(std::get<wire::FlushDoneMsg>(done).token, 12345u);
}

// The incremental probe is what lets a socket reader distinguish "not all
// bytes arrived yet" from "the stream is corrupt": every prefix of a valid
// frame must be kNeedMore (never kCorrupt), the full frame kComplete with
// the exact size, and damaged header bytes kCorrupt as soon as they are
// visible.
TEST(WireCodec, ProbeReportsNeedMoreForEveryPrefixOfValidFrames) {
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<Frame> frames = {
      wire::frame_schema(*schema),
      wire::frame_event(Event::from_pairs(schema, {{"temperature", 20},
                                                   {"humidity", 50},
                                                   {"radiation", 3}})),
      wire::frame_subscribe(7, parse_profile(schema, "humidity <= 5")),
      wire::frame_unsubscribe(7),
      wire::frame_delivery(9, Event::from_pairs(schema, {{"temperature", 0},
                                                         {"humidity", 0},
                                                         {"radiation", 1}})),
      wire::frame_flush(1),
      wire::frame_flush_done(1),
      wire::frame_link(9, wire::frame_flush(1)),
      wire::frame_link_ack(9),
      wire::frame_hello(1),
      wire::frame_hello_ack(false, 1, 0),
  };
  for (const Frame& frame : frames) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      const wire::FrameProbe probe =
          wire::probe_frame(std::span(frame.data(), cut));
      EXPECT_EQ(probe.status, wire::FrameStatus::kNeedMore)
          << "prefix of " << cut << " bytes misclassified";
    }

    const wire::FrameProbe complete = wire::probe_frame(frame);
    ASSERT_EQ(complete.status, wire::FrameStatus::kComplete);
    EXPECT_EQ(complete.size, frame.size());

    // Extra bytes after the frame belong to the next frame: the probe still
    // reports this frame's exact size.
    Frame padded = frame;
    padded.insert(padded.end(), {0x57, 0x47, 0x00});
    const wire::FrameProbe with_tail = wire::probe_frame(padded);
    ASSERT_EQ(with_tail.status, wire::FrameStatus::kComplete);
    EXPECT_EQ(with_tail.size, frame.size());
  }
}

TEST(WireCodec, ProbeFlagsCorruptHeadersAsSoonAsVisible) {
  const Frame good = wire::frame_unsubscribe(1);

  for (const std::size_t byte : {0u, 1u}) {  // magic
    Frame bad = good;
    bad[byte] ^= 0xFF;
    for (std::size_t cut = byte + 1; cut <= bad.size(); ++cut) {
      EXPECT_EQ(wire::probe_frame(std::span(bad.data(), cut)).status,
                wire::FrameStatus::kCorrupt)
          << "magic byte " << byte << " cut " << cut;
    }
  }

  Frame bad_version = good;
  bad_version[2] = wire::kWireVersion + 1;
  EXPECT_EQ(wire::probe_frame(std::span(bad_version.data(), 3)).status,
            wire::FrameStatus::kCorrupt);

  Frame bad_type = good;
  bad_type[3] = 99;
  EXPECT_EQ(wire::probe_frame(std::span(bad_type.data(), 4)).status,
            wire::FrameStatus::kCorrupt);

  // A length field above the cap is corruption, not a 4 GiB allocation.
  Frame huge = good;
  huge[4] = 0xFF;
  huge[5] = 0xFF;
  huge[6] = 0xFF;
  huge[7] = 0xFF;
  const wire::FrameProbe oversized = wire::probe_frame(huge);
  EXPECT_EQ(oversized.status, wire::FrameStatus::kCorrupt);
}

TEST(WireCodec, OutOfDomainPayloadsAreRejected) {
  const SchemaPtr schema = testutil::example1_schema();
  // Events and profiles valid for a wider schema must be rejected when
  // decoded against a narrower one (index/attribute validation).
  const SchemaPtr wide = SchemaBuilder()
                             .add_integer("temperature", -30, 200)
                             .add_integer("humidity", 0, 100)
                             .add_integer("radiation", 1, 100)
                             .add_integer("extra", 0, 9)
                             .build();
  expect_parse_failure(
      wire::frame_event(Event::from_pairs(wide, {{"temperature", 199},
                                                 {"humidity", 0},
                                                 {"radiation", 1},
                                                 {"extra", 0}})),
      schema, "event attribute count mismatch");

  const SchemaPtr three_wide = SchemaBuilder()
                                   .add_integer("temperature", -30, 200)
                                   .add_integer("humidity", 0, 100)
                                   .add_integer("radiation", 1, 100)
                                   .build();
  expect_parse_failure(
      wire::frame_event(Event::from_pairs(three_wide, {{"temperature", 199},
                                                       {"humidity", 0},
                                                       {"radiation", 1}})),
      schema, "event index outside domain");
  expect_parse_failure(
      wire::frame_profile(parse_profile(three_wide, "temperature >= 150")),
      schema, "profile interval outside domain");
}

TEST(WireCodec, ByteFlipFuzzNeverCrashes) {
  // Flipping any single byte must either still decode (payload bytes can
  // land on another valid value) or throw Error{kParse} — nothing else.
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<Frame> frames = {
      wire::frame_schema(*schema),
      wire::frame_event(Event::from_pairs(schema, {{"temperature", 0},
                                                   {"humidity", 1},
                                                   {"radiation", 2}})),
      wire::frame_subscribe(
          3, parse_profile(schema, "temperature >= 35 && radiation <= 60")),
  };
  Rng rng(99);
  for (const Frame& frame : frames) {
    for (std::size_t at = 0; at < frame.size(); ++at) {
      Frame corrupted = frame;
      corrupted[at] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      try {
        (void)wire::decode_message(corrupted, schema);
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kParse)
            << "byte " << at << ": " << e.what();
      }
    }
  }
}

TEST(WireCodec, ReliabilityFramesRoundTrip) {
  const SchemaPtr schema = testutil::example1_schema();
  const Event event = Event::from_pairs(
      schema, {{"temperature", 40}, {"humidity", 91}, {"radiation", 8}}, 5);

  // Link envelope: the nested frame comes back still encoded (dedup before
  // decode), and decoding the inner bytes yields the original message.
  const Frame inner = wire::frame_event(event);
  const wire::Message link = wire::decode_message(
      wire::frame_link(0x0123456789ABCDEFULL, inner), schema);
  ASSERT_TRUE(std::holds_alternative<wire::LinkFrameMsg>(link));
  const auto& env = std::get<wire::LinkFrameMsg>(link);
  EXPECT_EQ(env.sequence, 0x0123456789ABCDEFULL);
  EXPECT_EQ(env.inner, inner);
  const wire::Message nested = wire::decode_message(env.inner, schema);
  ASSERT_TRUE(std::holds_alternative<wire::EventMsg>(nested));
  EXPECT_EQ(std::get<wire::EventMsg>(nested).event.indices(),
            event.indices());

  const wire::Message ack =
      wire::decode_message(wire::frame_link_ack(77), schema);
  ASSERT_TRUE(std::holds_alternative<wire::LinkAckMsg>(ack));
  EXPECT_EQ(std::get<wire::LinkAckMsg>(ack).sequence, 77u);

  const wire::Message hello =
      wire::decode_message(wire::frame_hello(0xC0FFEEULL), schema);
  ASSERT_TRUE(std::holds_alternative<wire::HelloMsg>(hello));
  EXPECT_EQ(std::get<wire::HelloMsg>(hello).session_id, 0xC0FFEEULL);

  for (const bool resumed : {false, true}) {
    const wire::Message hello_ack = wire::decode_message(
        wire::frame_hello_ack(resumed, 0xC0FFEEULL, 31337), schema);
    ASSERT_TRUE(std::holds_alternative<wire::HelloAckMsg>(hello_ack));
    const auto& msg = std::get<wire::HelloAckMsg>(hello_ack);
    EXPECT_EQ(msg.resumed, resumed);
    EXPECT_EQ(msg.session_id, 0xC0FFEEULL);
    EXPECT_EQ(msg.publish_watermark, 31337u);
  }
}

TEST(WireCodec, LinkEnvelopeRejectsCorruptInnerFrames) {
  const SchemaPtr schema = testutil::example1_schema();
  // An envelope whose nested bytes are not themselves a complete valid
  // frame is rejected at the envelope layer.
  const Frame inner = wire::frame_unsubscribe(3);
  const Frame short_inner(inner.begin(), inner.end() - 1);
  expect_parse_failure(wire::frame_link(1, short_inner), schema,
                       "truncated inner frame");

  Frame bad_inner = inner;
  bad_inner[0] ^= 0xFF;
  expect_parse_failure(wire::frame_link(1, bad_inner), schema,
                       "corrupt inner magic");

  // The encoder refuses an empty nested frame outright...
  EXPECT_THROW(wire::frame_link(1, Frame{}), Error);
  // ...so a sequence-only envelope can only arrive hand-crafted; the
  // decoder rejects it too.
  wire::Writer w;
  w.u16(wire::kMagic);
  w.u8(wire::kWireVersion);
  w.u8(static_cast<std::uint8_t>(wire::MessageType::kLinkFrame));
  w.u32(8);  // payload: just the sequence, no nested frame
  w.u64(1);
  expect_parse_failure(w.take(), schema, "empty inner");
}

TEST(WireCodec, ReliabilityFrameByteFlipFuzzNeverCrashes) {
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<Frame> frames = {
      wire::frame_link(42, wire::frame_event(Event::from_pairs(
                               schema, {{"temperature", 0},
                                        {"humidity", 1},
                                        {"radiation", 2}}))),
      wire::frame_link_ack(42),
      wire::frame_hello(42),
      wire::frame_hello_ack(true, 42, 7),
  };
  Rng rng(1234);
  for (const Frame& frame : frames) {
    for (std::size_t at = 0; at < frame.size(); ++at) {
      Frame corrupted = frame;
      corrupted[at] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      try {
        (void)wire::decode_message(corrupted, schema);
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kParse)
            << "byte " << at << ": " << e.what();
      }
    }
  }
}

TEST(WireCodec, CompositeFramesRoundTrip) {
  const SchemaPtr schema = testutil::example1_schema();
  const CompositeExprPtr expr = parse_composite(
      schema,
      "neg({radiation >= 50}, seq({temperature >= 35}, {humidity >= 90}, "
      "w=10), w=7)");

  const wire::Message sub = wire::decode_message(
      wire::frame_composite_subscribe(0xABCDEF01u, *expr), schema);
  ASSERT_TRUE(std::holds_alternative<wire::CompositeSubscribeMsg>(sub));
  const auto& msg = std::get<wire::CompositeSubscribeMsg>(sub);
  EXPECT_EQ(msg.key, 0xABCDEF01u);
  ASSERT_NE(msg.expression, nullptr);
  // Structural identity via the canonical text form (profile leaves render
  // their normalized expressions).
  EXPECT_EQ(msg.expression->to_string(), expr->to_string());
  EXPECT_TRUE(has_profile_leaves(*msg.expression));

  const wire::Message unsub = wire::decode_message(
      wire::frame_composite_unsubscribe(77), schema);
  ASSERT_TRUE(std::holds_alternative<wire::CompositeUnsubscribeMsg>(unsub));
  EXPECT_EQ(std::get<wire::CompositeUnsubscribeMsg>(unsub).key, 77u);

  const wire::Message firing = wire::decode_message(
      wire::frame_composite_firing(9, -12345), schema);
  ASSERT_TRUE(std::holds_alternative<wire::CompositeFiringMsg>(firing));
  EXPECT_EQ(std::get<wire::CompositeFiringMsg>(firing).key, 9u);
  EXPECT_EQ(std::get<wire::CompositeFiringMsg>(firing).time, -12345);
}

TEST(WireCodec, RandomizedCompositeRoundTrips) {
  Rng rng(2024);
  for (int round = 0; round < 40; ++round) {
    const SchemaPtr schema = random_int_schema(rng);
    // Random expression tree over random single-attribute range profiles.
    const std::function<CompositeExprPtr(int)> build =
        [&](int depth) -> CompositeExprPtr {
      if (depth >= 4 || rng.below(3) == 0) {
        const AttributeId attr = static_cast<AttributeId>(
            rng.below(static_cast<std::uint64_t>(schema->attribute_count())));
        const Domain& domain = schema->attribute(attr).domain;
        const DomainIndex lo =
            static_cast<DomainIndex>(rng.below(
                static_cast<std::uint64_t>(domain.size())));
        return primitive(ProfileBuilder(schema)
                             .where(schema->attribute(attr).name, Op::kGe,
                                    domain.value_at(lo))
                             .build());
      }
      switch (rng.below(4)) {
        case 0: return seq(build(depth + 1), build(depth + 1),
                           1 + static_cast<Timestamp>(rng.below(100)));
        case 1: return conj(build(depth + 1), build(depth + 1),
                            1 + static_cast<Timestamp>(rng.below(100)));
        case 2: return disj(build(depth + 1), build(depth + 1));
        default: return neg(build(depth + 1), build(depth + 1),
                            static_cast<Timestamp>(rng.below(100)));
      }
    };
    const CompositeExprPtr expr = build(0);
    const Frame frame = wire::frame_composite_subscribe(round, *expr);
    const wire::Message decoded = wire::decode_message(frame, schema);
    ASSERT_TRUE(std::holds_alternative<wire::CompositeSubscribeMsg>(decoded));
    EXPECT_EQ(std::get<wire::CompositeSubscribeMsg>(decoded)
                  .expression->to_string(),
              expr->to_string());

    // Every truncation of the composite frame is rejected.
    for (std::size_t cut = 0; cut < frame.size(); cut += 3) {
      expect_parse_failure(
          Frame(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(cut)),
          schema, "composite truncated at " + std::to_string(cut));
    }
  }
}

TEST(WireCodec, CompositeDepthBombIsRejected) {
  // A hostile frame nesting operators past kMaxCompositeDepth must fail
  // with kParse before exhausting the stack.
  const SchemaPtr schema = testutil::example1_schema();
  wire::Writer w;
  w.u16(wire::kMagic);
  w.u8(wire::kWireVersion);
  w.u8(static_cast<std::uint8_t>(wire::MessageType::kCompositeSubscribe));
  const std::size_t depth = wire::kMaxCompositeDepth + 8;
  w.u32(static_cast<std::uint32_t>(8 + depth * 9));  // key + nested seq spine
  w.u64(1);  // key
  for (std::size_t d = 0; d < depth; ++d) {
    w.u8(static_cast<std::uint8_t>(CompositeExpr::Kind::kSeq));
    w.i64(10);
  }
  expect_parse_failure(w.take(), schema, "depth bomb");
}

TEST(WireCodec, CompositeIdLeavesRefuseToSerialize) {
  // Detector-level leaves carry broker-local profile ids; putting them on
  // the wire would be meaningless at the receiver.
  EXPECT_THROW(wire::frame_composite_subscribe(
                   1, *seq(primitive(1), primitive(2), 5)),
               Error);
}

TEST(WireCodec, EncoderEnforcesTheDepthCapSymmetrically) {
  // The encoder must never emit a frame its own decoder refuses: an
  // expression nested past kMaxCompositeDepth fails at encode time.
  const SchemaPtr schema = testutil::example1_schema();
  CompositeExprPtr deep = parse_composite(schema, "{temperature >= 0}");
  for (std::size_t d = 0; d < wire::kMaxCompositeDepth + 4; ++d) {
    deep = disj(deep, parse_composite(schema, "{humidity >= 0}"));
  }
  try {
    wire::frame_composite_subscribe(1, *deep);
    FAIL() << "expected Error{kInvalidArgument}";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST(WireCodec, CompositeByteFlipFuzzNeverCrashes) {
  const SchemaPtr schema = testutil::example1_schema();
  const Frame frame = wire::frame_composite_subscribe(
      5, *parse_composite(
             schema, "conj({temperature >= 35}, {humidity >= 90}, w=10)"));
  Rng rng(7);
  for (int round = 0; round < 400; ++round) {
    Frame corrupted = frame;
    const std::size_t at = rng.below(corrupted.size());
    corrupted[at] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    try {
      (void)wire::decode_message(corrupted, schema);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse)
          << "byte " << at << ": " << e.what();
    }
  }
}

TEST(WireCodec, InflatedCountsAreRejectedBeforeAllocation) {
  // A frame whose element count claims more data than the buffer holds must
  // fail the count sanity bound, not attempt a giant allocation.
  const SchemaPtr schema = testutil::example1_schema();
  wire::Writer w;
  w.u16(wire::kMagic);
  w.u8(wire::kWireVersion);
  w.u8(static_cast<std::uint8_t>(wire::MessageType::kEvent));
  w.u32(4);            // payload: exactly the count field below
  w.u32(0x40000000u);  // claims a billion attributes
  expect_parse_failure(w.take(), schema, "inflated count");
}

}  // namespace
}  // namespace genas
