// Tests for the distributed broker overlay (content-based routing with
// covering, flooding baseline).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/overlay.hpp"
#include "profile/parser.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class OverlayTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();

  Event make_event(std::int64_t t, std::int64_t h, std::int64_t r) {
    return Event::from_pairs(
        schema_, {{"temperature", t}, {"humidity", h}, {"radiation", r}});
  }

  /// Chain topology: 0 - 1 - 2 - 3.
  net::OverlayNetwork make_chain(net::RoutingMode mode) {
    net::OverlayOptions options;
    options.mode = mode;
    net::OverlayNetwork net(schema_, options);
    for (int i = 0; i < 4; ++i) net.add_broker();
    net.connect(0, 1);
    net.connect(1, 2);
    net.connect(2, 3);
    return net;
  }
};

TEST_F(OverlayTest, DeliversAcrossTheOverlay) {
  for (const auto mode :
       {net::RoutingMode::kFlooding, net::RoutingMode::kRouting,
        net::RoutingMode::kRoutingCovered}) {
    net::OverlayNetwork net = make_chain(mode);
    net.subscribe(3, parse_profile(schema_, "temperature >= 35"));
    net.subscribe(0, parse_profile(schema_, "humidity <= 5"));

    // Published at node 0, must reach the subscriber at node 3.
    EXPECT_EQ(net.publish(0, make_event(40, 50, 1)), 1u)
        << net::to_string(mode);
    // Matches both subscribers (nodes 0 and 3).
    EXPECT_EQ(net.publish(1, make_event(40, 3, 1)), 2u)
        << net::to_string(mode);
    // Matches nobody.
    EXPECT_EQ(net.publish(2, make_event(0, 50, 1)), 0u)
        << net::to_string(mode);
  }
}

TEST_F(OverlayTest, RoutingSuppressesUninterestedLinks) {
  net::OverlayNetwork flooding = make_chain(net::RoutingMode::kFlooding);
  net::OverlayNetwork routing = make_chain(net::RoutingMode::kRouting);
  for (auto* net : {&flooding, &routing}) {
    net->subscribe(1, parse_profile(schema_, "temperature >= 35"));
  }

  // A non-matching event published at node 0:
  // flooding sends it down the whole chain (3 links), routing stops at 0.
  flooding.publish(0, make_event(0, 50, 1));
  routing.publish(0, make_event(0, 50, 1));
  EXPECT_EQ(flooding.stats().event_messages, 3u);
  EXPECT_EQ(routing.stats().event_messages, 0u);

  // A matching event still reaches node 1 under routing, and is not
  // forwarded beyond it (nodes 2,3 have no interest).
  routing.reset_stats();
  EXPECT_EQ(routing.publish(0, make_event(40, 50, 1)), 1u);
  EXPECT_EQ(routing.stats().event_messages, 1u);
}

TEST_F(OverlayTest, CoveringReducesRoutingState) {
  net::OverlayNetwork plain = make_chain(net::RoutingMode::kRouting);
  net::OverlayNetwork covered = make_chain(net::RoutingMode::kRoutingCovered);
  for (auto* net : {&plain, &covered}) {
    net->subscribe(3, parse_profile(schema_, "temperature >= 30"));
    net->subscribe(3, parse_profile(schema_, "temperature >= 35"));  // covered
    net->subscribe(3, parse_profile(schema_,
                                    "temperature >= 40 && humidity >= 90"));
  }
  // Without covering every subscription propagates over all 3 links.
  EXPECT_EQ(plain.stats().profile_messages, 9u);
  // With covering only the most general survives past the first hop.
  EXPECT_EQ(covered.stats().profile_messages, 3u);
  EXPECT_LT(covered.routing_entries(1), plain.routing_entries(1));

  // Delivery semantics must be identical.
  EXPECT_EQ(plain.publish(0, make_event(45, 95, 1)),
            covered.publish(0, make_event(45, 95, 1)));
  EXPECT_EQ(plain.publish(0, make_event(32, 10, 1)),
            covered.publish(0, make_event(32, 10, 1)));
}

TEST_F(OverlayTest, StarTopologyRoutesOnlyToInterestedArms) {
  net::OverlayOptions options;
  options.mode = net::RoutingMode::kRouting;
  net::OverlayNetwork net(schema_, options);
  const net::NodeId hub = net.add_broker();
  std::vector<net::NodeId> arms;
  for (int i = 0; i < 4; ++i) {
    arms.push_back(net.add_broker());
    net.connect(hub, arms.back());
  }
  net.subscribe(arms[0], parse_profile(schema_, "temperature >= 35"));
  net.subscribe(arms[1], parse_profile(schema_, "humidity >= 90"));

  net.reset_stats();
  EXPECT_EQ(net.publish(arms[2], make_event(40, 10, 1)), 1u);
  // Path: arm2 -> hub -> arm0 only.
  EXPECT_EQ(net.stats().event_messages, 2u);
}

TEST_F(OverlayTest, LocalSubscriptionCountsAndStats) {
  net::OverlayNetwork net = make_chain(net::RoutingMode::kRoutingCovered);
  net.subscribe(2, parse_profile(schema_, "radiation >= 50"));
  EXPECT_EQ(net.local_subscriptions(2), 1u);
  EXPECT_EQ(net.local_subscriptions(0), 0u);
  net.publish(0, make_event(0, 0, 80));
  const net::OverlayStats& stats = net.stats();
  EXPECT_EQ(stats.events_published, 1u);
  EXPECT_EQ(stats.deliveries, 1u);
  EXPECT_GT(stats.filter_operations, 0u);
}

TEST_F(OverlayTest, RejectsCyclesAndBadIds) {
  net::OverlayNetwork net = make_chain(net::RoutingMode::kRouting);
  EXPECT_THROW(net.connect(0, 3), Error);  // would close the chain cycle
  EXPECT_THROW(net.connect(1, 1), Error);
  EXPECT_THROW(net.publish(9, make_event(0, 0, 1)), Error);
  EXPECT_THROW(net.subscribe(9, parse_profile(schema_, "*")), Error);
  EXPECT_THROW(net.routing_entries(9), Error);

  const SchemaPtr other = testutil::example1_schema();
  EXPECT_THROW(net.subscribe(0, parse_profile(other, "*")), Error);
}

TEST_F(OverlayTest, FloodingKeepsNoRoutingState) {
  net::OverlayNetwork net = make_chain(net::RoutingMode::kFlooding);
  net.subscribe(3, parse_profile(schema_, "temperature >= 35"));
  EXPECT_EQ(net.routing_entries(1), 0u);
  EXPECT_EQ(net.stats().profile_messages, 0u);
}

}  // namespace
}  // namespace genas
