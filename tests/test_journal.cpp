// Durable subscription journal tests: round-trip recovery, torn/corrupt
// tail truncation (a crash mid-append costs records, never a failed load),
// CRC forgery detection, compaction via atomic replace, the schema-first
// protocol, and replay into a fresh broker.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "ens/broker.hpp"
#include "ens/composite.hpp"
#include "ens/journal.hpp"
#include "profile/parser.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir();
    if (path_.empty() || path_.back() != '/') path_ += '/';
    path_ += "genas_journal_";
    path_ += ::testing::UnitTest::GetInstance()->current_test_info()->name();
    path_ += '_';
    path_ += std::to_string(::getpid());
    path_ += ".journal";
    std::remove(path_.c_str());
    schema_ = testutil::example1_schema();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<std::uint8_t> file_bytes() const {
    std::ifstream in(path_, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
  }
  void write_file(const std::vector<std::uint8_t>& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  /// A populated journal: schema, three subscribes (one later retracted),
  /// one composite (plus one retracted composite).
  void populate() {
    SubscriptionJournal journal;
    journal.open(path_);
    journal.record_schema(*schema_);
    journal.record_subscribe(1, parse_profile(schema_, "temperature >= 35"));
    journal.record_subscribe(2, parse_profile(schema_, "humidity >= 90"));
    journal.record_subscribe(3, parse_profile(schema_, "radiation >= 50"));
    journal.record_unsubscribe(2);
    journal.record_composite_subscribe(
        10, *parse_composite(schema_,
                             "seq({temperature >= 35}, {humidity >= 90}, "
                             "w=10)"));
    journal.record_composite_subscribe(
        11, *parse_composite(schema_, "disj({radiation >= 90}, "
                                      "{temperature <= -20})"));
    journal.record_composite_unsubscribe(11);
    journal.sync();
  }

  std::string path_;
  SchemaPtr schema_;
};

TEST_F(JournalTest, RoundTripRecoversLiveState) {
  populate();

  SubscriptionJournal journal;
  SubscriptionJournal::LoadStats stats;
  const SubscriptionJournal::State& state = journal.open(path_, &stats);

  EXPECT_EQ(stats.records, 8u);
  EXPECT_EQ(stats.bytes_dropped, 0u);
  ASSERT_NE(state.schema, nullptr);
  EXPECT_EQ(state.schema->attribute_count(), schema_->attribute_count());
  EXPECT_EQ(state.subscriptions.size(), 2u);
  EXPECT_TRUE(state.subscriptions.count(1));
  EXPECT_TRUE(state.subscriptions.count(3));
  EXPECT_FALSE(state.subscriptions.count(2));
  EXPECT_EQ(state.composites.size(), 1u);
  EXPECT_TRUE(state.composites.count(10));
}

TEST_F(JournalTest, ReplayRegistersEverythingWithAFreshBroker) {
  populate();

  SubscriptionJournal journal;
  const SubscriptionJournal::State& state = journal.open(path_);
  Broker broker(state.schema);

  std::vector<std::uint64_t> delivered;
  std::vector<std::uint64_t> fired;
  const JournalReplayResult handles = replay_journal(
      state, broker,
      [&](std::uint64_t key) {
        return [&delivered, key](const Notification&) {
          delivered.push_back(key);
        };
      },
      [&](std::uint64_t key) {
        return [&fired, key](const CompositeFiring&) { fired.push_back(key); };
      });

  EXPECT_EQ(handles.subscriptions.size(), 2u);
  EXPECT_EQ(handles.composites.size(), 1u);

  broker.publish(Event::from_pairs(
      state.schema, {{"temperature", 40}, {"humidity", 10}, {"radiation", 1}},
      1));
  broker.publish(Event::from_pairs(
      state.schema, {{"temperature", 0}, {"humidity", 95}, {"radiation", 60}},
      2));
  broker.flush_composites();

  // Event 1 matches sub 1; event 2 matches sub 3 (retracted sub 2 must be
  // gone) and completes the seq composite.
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{10}));
}

TEST_F(JournalTest, ReplayRejectsABrokerWithADifferentSchemaInstance) {
  populate();
  SubscriptionJournal journal;
  const SubscriptionJournal::State& state = journal.open(path_);
  Broker broker(schema_);  // structurally equal, different instance
  try {
    replay_journal(
        state, broker, [](std::uint64_t) { return [](const Notification&) {}; },
        [](std::uint64_t) { return [](const CompositeFiring&) {}; });
    FAIL() << "expected Error{kInvalidArgument}";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST_F(JournalTest, TornTailIsTruncatedNotFatal) {
  populate();
  std::vector<std::uint8_t> bytes = file_bytes();
  const std::size_t full = bytes.size();

  // Simulate a crash mid-append: half of the last record made it to disk.
  bytes.resize(full - 7);
  write_file(bytes);

  SubscriptionJournal journal;
  SubscriptionJournal::LoadStats stats;
  const SubscriptionJournal::State& state = journal.open(path_, &stats);
  EXPECT_EQ(stats.records, 7u);  // the torn composite-unsubscribe is gone
  EXPECT_GT(stats.bytes_dropped, 0u);
  // The retraction was the torn record, so composite 11 is live again.
  EXPECT_EQ(state.composites.size(), 2u);
  journal.close();

  // The bad tail was truncated in place: a second load is clean.
  SubscriptionJournal again;
  SubscriptionJournal::LoadStats stats2;
  again.open(path_, &stats2);
  EXPECT_EQ(stats2.records, 7u);
  EXPECT_EQ(stats2.bytes_dropped, 0u);
}

TEST_F(JournalTest, GarbageTailIsTruncated) {
  populate();
  std::vector<std::uint8_t> bytes = file_bytes();
  for (int i = 0; i < 40; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(0xA5 ^ i));
  }
  write_file(bytes);

  SubscriptionJournal journal;
  SubscriptionJournal::LoadStats stats;
  journal.open(path_, &stats);
  EXPECT_EQ(stats.records, 8u);
  EXPECT_EQ(stats.bytes_dropped, 40u);
}

TEST_F(JournalTest, CrcMismatchDropsTheRecordAndItsSuffix) {
  populate();
  std::vector<std::uint8_t> bytes = file_bytes();

  // Flip one payload byte in the middle of the file: the CRC of that
  // record no longer matches, so it and everything after it are dropped.
  bytes[bytes.size() / 2] ^= 0x01;
  write_file(bytes);

  SubscriptionJournal journal;
  SubscriptionJournal::LoadStats stats;
  journal.open(path_, &stats);
  EXPECT_LT(stats.records, 8u);
  EXPECT_GT(stats.bytes_dropped, 0u);
}

TEST_F(JournalTest, Crc32MatchesTheIeeeReferenceVector) {
  const char* text = "123456789";
  const std::uint32_t crc = SubscriptionJournal::crc32(std::span(
      reinterpret_cast<const std::uint8_t*>(text), 9));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST_F(JournalTest, CompactionDropsChurnAndSurvivesReload) {
  SubscriptionJournal journal;
  journal.open(path_);
  journal.record_schema(*schema_);
  const Profile keeper = parse_profile(schema_, "temperature >= 35");
  journal.record_subscribe(1, keeper);
  for (std::uint64_t k = 100; k < 140; ++k) {
    journal.record_subscribe(k, parse_profile(schema_, "humidity >= 90"));
    journal.record_unsubscribe(k);
  }
  journal.sync();
  const std::uint64_t before = journal.size_bytes();

  journal.compact();
  EXPECT_LT(journal.size_bytes(), before);
  EXPECT_EQ(journal.state().subscriptions.size(), 1u);

  // The journal stays open on the new file: appends still work.
  journal.record_subscribe(2, parse_profile(schema_, "radiation >= 50"));
  journal.sync();
  journal.close();

  SubscriptionJournal reloaded;
  SubscriptionJournal::LoadStats stats;
  const SubscriptionJournal::State& state = reloaded.open(path_, &stats);
  EXPECT_EQ(stats.bytes_dropped, 0u);
  EXPECT_EQ(state.subscriptions.size(), 2u);
  EXPECT_TRUE(state.subscriptions.count(1));
  EXPECT_TRUE(state.subscriptions.count(2));
}

TEST_F(JournalTest, SchemaRecordIsRequiredFirstAndUnique) {
  SubscriptionJournal journal;
  journal.open(path_);
  EXPECT_THROW(
      journal.record_subscribe(1, parse_profile(schema_, "humidity >= 90")),
      Error);
  journal.record_schema(*schema_);
  EXPECT_THROW(journal.record_schema(*schema_), Error);
  EXPECT_THROW(SubscriptionJournal().record_schema(*schema_), Error);
}

TEST_F(JournalTest, ReopeningAnEmptyJournalIsCleanAndWritable) {
  {
    SubscriptionJournal journal;
    SubscriptionJournal::LoadStats stats;
    const SubscriptionJournal::State& state = journal.open(path_, &stats);
    EXPECT_EQ(state.schema, nullptr);
    EXPECT_EQ(stats.records, 0u);
  }
  populate();  // reuses the now-existing empty file
  SubscriptionJournal journal;
  const SubscriptionJournal::State& state = journal.open(path_);
  EXPECT_EQ(state.subscriptions.size(), 2u);
}

}  // namespace
}  // namespace genas
