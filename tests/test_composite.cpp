// Tests for the composite-event algebra and detector.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ens/composite.hpp"

namespace genas {
namespace {

class CompositeTest : public ::testing::Test {
 protected:
  CompositeDetector detector_;
  std::vector<Timestamp> fired_;

  CompositeId add(const CompositeExprPtr& expr) {
    return detector_.add(
        expr, [this](const CompositeFiring& f) { fired_.push_back(f.time); });
  }
};

TEST_F(CompositeTest, SequenceFiresOnlyInOrderWithinWindow) {
  add(seq(primitive(1), primitive(2), 10));

  detector_.on_match(2, 1);   // B before A: nothing
  EXPECT_TRUE(fired_.empty());
  detector_.on_match(1, 5);   // A
  detector_.on_match(2, 12);  // B, 7 <= 10 after A -> fire
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_EQ(fired_[0], 12);

  // A was consumed: another B alone must not fire.
  detector_.on_match(2, 14);
  EXPECT_EQ(fired_.size(), 1u);
}

TEST_F(CompositeTest, SequenceWindowExpires) {
  add(seq(primitive(1), primitive(2), 10));
  detector_.on_match(1, 0);
  detector_.on_match(2, 11);  // outside window
  EXPECT_TRUE(fired_.empty());
}

TEST_F(CompositeTest, SequenceRequiresStrictOrder) {
  add(seq(primitive(1), primitive(2), 10));
  // Same timestamp (e.g., one event matching both profiles in one publish):
  // "then" means strictly after.
  detector_.on_match(1, 5);
  detector_.on_match(2, 5);
  EXPECT_TRUE(fired_.empty());
}

TEST_F(CompositeTest, ConjunctionFiresInAnyOrder) {
  add(conj(primitive(1), primitive(2), 10));
  detector_.on_match(2, 3);
  detector_.on_match(1, 8);  // within window, reversed order -> fire
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_EQ(fired_[0], 8);

  // Both were consumed.
  detector_.on_match(1, 9);
  EXPECT_EQ(fired_.size(), 1u);
  detector_.on_match(2, 15);
  EXPECT_EQ(fired_.size(), 2u);
}

TEST_F(CompositeTest, DisjunctionFiresOnEither) {
  add(disj(primitive(1), primitive(2)));
  detector_.on_match(1, 1);
  detector_.on_match(2, 2);
  detector_.on_match(3, 3);  // unrelated profile
  EXPECT_EQ(fired_, (std::vector<Timestamp>{1, 2}));
}

TEST_F(CompositeTest, NegationSuppressesWithinWindow) {
  // neg(absent=1, then=2, window=10): "2 with no 1 in the last 10".
  add(neg(primitive(1), primitive(2), 10));
  detector_.on_match(2, 5);  // no blocker ever: fire
  EXPECT_EQ(fired_.size(), 1u);

  detector_.on_match(1, 10);  // blocker
  detector_.on_match(2, 15);  // 5 <= 10 after blocker: suppressed
  EXPECT_EQ(fired_.size(), 1u);
  detector_.on_match(2, 21);  // 11 > 10 after blocker: fire
  EXPECT_EQ(fired_.size(), 2u);
}

TEST_F(CompositeTest, NestedExpressions) {
  // seq(disj(1,2), 3): either trigger, then 3.
  add(seq(disj(primitive(1), primitive(2)), primitive(3), 100));
  detector_.on_match(2, 1);
  detector_.on_match(3, 4);
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_EQ(fired_[0], 4);
}

TEST_F(CompositeTest, RemoveStopsFiring) {
  const CompositeId id = add(disj(primitive(1), primitive(2)));
  detector_.on_match(1, 1);
  detector_.remove(id);
  detector_.on_match(1, 2);
  EXPECT_EQ(fired_.size(), 1u);
  EXPECT_THROW(detector_.remove(id), Error);
  EXPECT_EQ(detector_.subscription_count(), 0u);
}

TEST_F(CompositeTest, MultipleSubscriptionsIndependent) {
  add(seq(primitive(1), primitive(2), 5));
  add(conj(primitive(1), primitive(3), 5));
  detector_.on_match(1, 1);
  detector_.on_match(3, 2);  // fires the conj only
  detector_.on_match(2, 3);  // fires the seq only
  EXPECT_EQ(fired_, (std::vector<Timestamp>{2, 3}));
}

TEST_F(CompositeTest, ExpressionToString) {
  const auto expr = neg(primitive(1), seq(primitive(2), primitive(3), 5), 7);
  const std::string s = expr->to_string();
  EXPECT_NE(s.find("seq"), std::string::npos);
  EXPECT_NE(s.find("p1"), std::string::npos);
  EXPECT_NE(s.find("w=5"), std::string::npos);
}

TEST_F(CompositeTest, Validation) {
  EXPECT_THROW(seq(nullptr, primitive(1), 5), Error);
  EXPECT_THROW(seq(primitive(1), primitive(2), 0), Error);
  EXPECT_THROW(conj(primitive(1), primitive(2), -1), Error);
  EXPECT_THROW(detector_.add(nullptr, [](const CompositeFiring&) {}), Error);
  EXPECT_THROW(detector_.add(primitive(1), nullptr), Error);
}

}  // namespace
}  // namespace genas
