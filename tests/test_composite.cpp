// Tests for the composite-event algebra and detector: operator semantics,
// window boundaries (firing exactly at `window`, legitimate negative
// timestamps vs. the never-fired sentinel, zero-width neg windows),
// re-entrant add/remove from inside callbacks, simultaneous-stimulus
// (on_event) semantics, the watermark reorder stage, and the textual
// composite form.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "ens/composite.hpp"
#include "profile/parser.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class CompositeTest : public ::testing::Test {
 protected:
  CompositeDetector detector_;
  std::vector<Timestamp> fired_;

  CompositeId add(const CompositeExprPtr& expr) {
    return detector_.add(
        expr, [this](const CompositeFiring& f) { fired_.push_back(f.time); });
  }
};

TEST_F(CompositeTest, SequenceFiresOnlyInOrderWithinWindow) {
  add(seq(primitive(1), primitive(2), 10));

  detector_.on_match(2, 1);   // B before A: nothing
  EXPECT_TRUE(fired_.empty());
  detector_.on_match(1, 5);   // A
  detector_.on_match(2, 12);  // B, 7 <= 10 after A -> fire
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_EQ(fired_[0], 12);

  // A was consumed: another B alone must not fire.
  detector_.on_match(2, 14);
  EXPECT_EQ(fired_.size(), 1u);
}

TEST_F(CompositeTest, SequenceWindowExpires) {
  add(seq(primitive(1), primitive(2), 10));
  detector_.on_match(1, 0);
  detector_.on_match(2, 11);  // outside window
  EXPECT_TRUE(fired_.empty());
}

TEST_F(CompositeTest, SequenceRequiresStrictOrder) {
  add(seq(primitive(1), primitive(2), 10));
  // Same timestamp (e.g., one event matching both profiles in one publish):
  // "then" means strictly after.
  detector_.on_match(1, 5);
  detector_.on_match(2, 5);
  EXPECT_TRUE(fired_.empty());
}

TEST_F(CompositeTest, ConjunctionFiresInAnyOrder) {
  add(conj(primitive(1), primitive(2), 10));
  detector_.on_match(2, 3);
  detector_.on_match(1, 8);  // within window, reversed order -> fire
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_EQ(fired_[0], 8);

  // Both were consumed.
  detector_.on_match(1, 9);
  EXPECT_EQ(fired_.size(), 1u);
  detector_.on_match(2, 15);
  EXPECT_EQ(fired_.size(), 2u);
}

TEST_F(CompositeTest, DisjunctionFiresOnEither) {
  add(disj(primitive(1), primitive(2)));
  detector_.on_match(1, 1);
  detector_.on_match(2, 2);
  detector_.on_match(3, 3);  // unrelated profile
  EXPECT_EQ(fired_, (std::vector<Timestamp>{1, 2}));
}

TEST_F(CompositeTest, NegationSuppressesWithinWindow) {
  // neg(absent=1, then=2, window=10): "2 with no 1 in the last 10".
  add(neg(primitive(1), primitive(2), 10));
  detector_.on_match(2, 5);  // no blocker ever: fire
  EXPECT_EQ(fired_.size(), 1u);

  detector_.on_match(1, 10);  // blocker
  detector_.on_match(2, 15);  // 5 <= 10 after blocker: suppressed
  EXPECT_EQ(fired_.size(), 1u);
  detector_.on_match(2, 21);  // 11 > 10 after blocker: fire
  EXPECT_EQ(fired_.size(), 2u);
}

TEST_F(CompositeTest, NestedExpressions) {
  // seq(disj(1,2), 3): either trigger, then 3.
  add(seq(disj(primitive(1), primitive(2)), primitive(3), 100));
  detector_.on_match(2, 1);
  detector_.on_match(3, 4);
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_EQ(fired_[0], 4);
}

TEST_F(CompositeTest, RemoveStopsFiring) {
  const CompositeId id = add(disj(primitive(1), primitive(2)));
  detector_.on_match(1, 1);
  detector_.remove(id);
  detector_.on_match(1, 2);
  EXPECT_EQ(fired_.size(), 1u);
  EXPECT_THROW(detector_.remove(id), Error);
  EXPECT_EQ(detector_.subscription_count(), 0u);
}

TEST_F(CompositeTest, MultipleSubscriptionsIndependent) {
  add(seq(primitive(1), primitive(2), 5));
  add(conj(primitive(1), primitive(3), 5));
  detector_.on_match(1, 1);
  detector_.on_match(3, 2);  // fires the conj only
  detector_.on_match(2, 3);  // fires the seq only
  EXPECT_EQ(fired_, (std::vector<Timestamp>{2, 3}));
}

TEST_F(CompositeTest, ExpressionToString) {
  const auto expr = neg(primitive(1), seq(primitive(2), primitive(3), 5), 7);
  const std::string s = expr->to_string();
  EXPECT_NE(s.find("seq"), std::string::npos);
  EXPECT_NE(s.find("p1"), std::string::npos);
  EXPECT_NE(s.find("w=5"), std::string::npos);
}

TEST_F(CompositeTest, Validation) {
  EXPECT_THROW(seq(nullptr, primitive(1), 5), Error);
  EXPECT_THROW(seq(primitive(1), primitive(2), 0), Error);
  EXPECT_THROW(conj(primitive(1), primitive(2), -1), Error);
  EXPECT_THROW(neg(primitive(1), primitive(2), -1), Error);
  EXPECT_THROW(detector_.add(nullptr, [](const CompositeFiring&) {}), Error);
  EXPECT_THROW(detector_.add(primitive(1), nullptr), Error);
}

// --- window boundaries ------------------------------------------------------

TEST_F(CompositeTest, SequenceFiresExactlyAtWindow) {
  add(seq(primitive(1), primitive(2), 10));
  detector_.on_match(1, 5);
  detector_.on_match(2, 15);  // B - A == window: inclusive, fires
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_EQ(fired_[0], 15);

  detector_.on_match(1, 20);
  detector_.on_match(2, 31);  // one past the window: expired
  EXPECT_EQ(fired_.size(), 1u);
}

TEST_F(CompositeTest, ConjunctionFiresExactlyAtWindow) {
  add(conj(primitive(1), primitive(2), 10));
  detector_.on_match(2, 0);
  detector_.on_match(1, 10);  // spread == window: fires
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_EQ(fired_[0], 10);
}

TEST_F(CompositeTest, NegativeTimestampsAreLegitimate) {
  // -1 must behave as an ordinary instant, not as "never fired": the
  // sentinel is kCompositeNever, far outside the timestamp range.
  add(seq(primitive(1), primitive(2), 10));
  detector_.on_match(1, -5);
  detector_.on_match(2, -1);  // 4 <= 10 after A: fires at time -1
  ASSERT_EQ(fired_.size(), 1u);
  EXPECT_EQ(fired_[0], -1);

  fired_.clear();
  CompositeDetector other;
  other.add(disj(primitive(1), primitive(2)),
            [this](const CompositeFiring& f) { fired_.push_back(f.time); });
  other.on_match(1, -1);  // a lone firing at -1 must surface
  EXPECT_EQ(fired_, (std::vector<Timestamp>{-1}));
}

TEST_F(CompositeTest, NegationZeroWidthWindow) {
  // window 0: only a simultaneous blocker suppresses.
  add(neg(primitive(1), primitive(2), 0));
  detector_.on_match(1, 4);
  detector_.on_match(2, 5);  // blocker 1 earlier: outside the zero window
  EXPECT_EQ(fired_, (std::vector<Timestamp>{5}));

  ProfileId both[] = {1, 2};
  detector_.on_event(both, 6);  // simultaneous blocker suppresses
  EXPECT_EQ(fired_.size(), 1u);
}

TEST_F(CompositeTest, NegationIgnoresBlockerAfterCompletion) {
  // A blocker *later* than the completion must not suppress it (possible
  // only with out-of-order feeds; the detector must not misfire on the
  // signed arithmetic).
  add(neg(primitive(1), primitive(2), 10));
  detector_.on_match(1, 50);  // future blocker arrives first
  detector_.on_match(2, 45);  // completion earlier than the blocker: fires
  EXPECT_EQ(fired_, (std::vector<Timestamp>{45}));
}

// --- simultaneous stimuli (on_event) ---------------------------------------

TEST_F(CompositeTest, SimultaneousConjunctionCompletesInOneInstant) {
  add(conj(primitive(1), primitive(2), 10));
  ProfileId both[] = {1, 2};
  detector_.on_event(both, 7);
  EXPECT_EQ(fired_, (std::vector<Timestamp>{7}));
}

TEST_F(CompositeTest, SimultaneousSequenceStaysStrict) {
  add(seq(primitive(1), primitive(2), 10));
  ProfileId both[] = {1, 2};
  detector_.on_event(both, 7);  // "then" is strict: no firing
  EXPECT_TRUE(fired_.empty());
  detector_.on_match(2, 9);  // the A of instant 7 is armed, though
  EXPECT_EQ(fired_, (std::vector<Timestamp>{9}));
}

TEST_F(CompositeTest, SimultaneousNegationBlockerWins) {
  add(neg(primitive(1), primitive(2), 10));
  ProfileId both[] = {1, 2};
  detector_.on_event(both, 7);  // deterministic: the blocker suppresses
  EXPECT_TRUE(fired_.empty());
}

// --- re-entrant mutation ----------------------------------------------------

TEST_F(CompositeTest, ReentrantRemoveFromCallback) {
  // Removing subscriptions from inside a callback must not invalidate the
  // sweep. Both entries match the same stimulus; the first callback removes
  // BOTH entries — the second must then not fire at all.
  std::vector<CompositeId> ids;
  std::size_t first_fired = 0;
  std::size_t second_fired = 0;
  ids.push_back(detector_.add(disj(primitive(1), primitive(2)),
                              [&](const CompositeFiring&) {
                                ++first_fired;
                                detector_.remove(ids[0]);
                                detector_.remove(ids[1]);
                              }));
  ids.push_back(detector_.add(disj(primitive(1), primitive(3)),
                              [&](const CompositeFiring&) {
                                ++second_fired;
                              }));
  detector_.on_match(1, 5);
  EXPECT_EQ(first_fired, 1u);
  EXPECT_EQ(second_fired, 0u);  // removed mid-sweep: skipped
  EXPECT_EQ(detector_.subscription_count(), 0u);
  detector_.on_match(1, 6);
  EXPECT_EQ(first_fired, 1u);
}

TEST_F(CompositeTest, ReentrantAddFromCallback) {
  // An entry added from inside a callback joins after the sweep and sees
  // only later stimuli.
  std::size_t added_fired = 0;
  detector_.add(disj(primitive(1), primitive(2)), [&](const CompositeFiring&) {
    if (detector_.subscription_count() == 1) {
      detector_.add(disj(primitive(1), primitive(3)),
                    [&](const CompositeFiring&) { ++added_fired; });
    }
  });
  detector_.on_match(1, 5);
  EXPECT_EQ(detector_.subscription_count(), 2u);
  EXPECT_EQ(added_fired, 0u);  // not fed the triggering stimulus
  detector_.on_match(1, 6);
  EXPECT_EQ(added_fired, 1u);
}

TEST_F(CompositeTest, ReentrantAddThenRemoveInSameSweep) {
  CompositeId added = 0;
  detector_.add(disj(primitive(1), primitive(2)), [&](const CompositeFiring&) {
    added = detector_.add(disj(primitive(1), primitive(3)),
                          [](const CompositeFiring&) {});
    detector_.remove(added);  // removing a pending add cancels it
  });
  detector_.on_match(1, 5);
  EXPECT_EQ(detector_.subscription_count(), 1u);
  EXPECT_THROW(detector_.remove(added), Error);
}

TEST_F(CompositeTest, ReentrantDoubleRemoveThrows) {
  std::size_t throws = 0;
  CompositeId id = 0;
  id = detector_.add(disj(primitive(1), primitive(2)),
                     [&](const CompositeFiring&) {
                       detector_.remove(id);
                       try {
                         detector_.remove(id);  // already pending: unknown
                       } catch (const Error& e) {
                         EXPECT_EQ(e.code(), ErrorCode::kNotFound);
                         ++throws;
                       }
                     });
  detector_.on_match(1, 5);
  EXPECT_EQ(throws, 1u);
  EXPECT_EQ(detector_.subscription_count(), 0u);
}

// --- armed-state garbage collection ----------------------------------------

TEST_F(CompositeTest, ExpireBeforeClearsOnlyExpiredArms) {
  add(seq(primitive(1), primitive(2), 10));
  add(conj(primitive(3), primitive(4), 5));
  detector_.on_match(1, 100);  // arms the seq
  detector_.on_match(3, 100);  // arms the conj's left
  EXPECT_EQ(detector_.armed_count(), 2u);

  // Horizons at the window edges: an in-order completion at exactly
  // armed + window still fires (inclusive window), so neither may expire.
  detector_.expire_before(105);
  EXPECT_EQ(detector_.armed_count(), 2u);

  // One past the conj's window (100 + 5): its arm can never complete off an
  // in-order stimulus again; the seq's (window 10) survives.
  detector_.expire_before(106);
  EXPECT_EQ(detector_.armed_count(), 1u);
  detector_.expire_before(111);  // one past the seq's window
  EXPECT_EQ(detector_.armed_count(), 0u);

  // A *late* B inside the cleared arm's window misses its combination —
  // the same out-of-order contract the watermark already implies (the
  // horizon only ever advances to the watermark).
  detector_.on_match(2, 109);
  EXPECT_TRUE(fired_.empty());
}

TEST_F(CompositeTest, ExpireBeforeClearsNegBlockers) {
  add(neg(primitive(1), primitive(2), 10));
  detector_.on_match(1, 50);  // blocker armed
  EXPECT_EQ(detector_.armed_count(), 1u);
  detector_.expire_before(61);  // blocker window fully passed
  EXPECT_EQ(detector_.armed_count(), 0u);
  detector_.on_match(2, 70);  // no live blocker: fires
  EXPECT_EQ(fired_, (std::vector<Timestamp>{70}));
}

// --- watermark reorder stage ------------------------------------------------

class IngressTest : public ::testing::Test {
 protected:
  CompositeDetector detector_;
  CompositeIngress ingress_{detector_};
  std::vector<Timestamp> fired_;

  void add(const CompositeExprPtr& expr) {
    detector_.add(expr, [this](const CompositeFiring& f) {
      fired_.push_back(f.time);
    });
  }
};

TEST_F(IngressTest, ReordersWithinSkew) {
  add(seq(primitive(1), primitive(2), 10));
  ingress_.set_skew(5);
  // Delivered out of order: B@8 arrives before A@6. With skew 5 the
  // instants buffer and release sorted, so the seq still completes.
  ingress_.push(2, 8);
  ingress_.push(1, 6);
  EXPECT_TRUE(fired_.empty());  // watermark (8-5) has not passed 8 yet
  ingress_.push(3, 20);         // advances the watermark past both
  EXPECT_EQ(fired_, (std::vector<Timestamp>{8}));
}

TEST_F(IngressTest, SkewZeroReleasesAllEarlierInstants) {
  add(seq(primitive(1), primitive(2), 10));
  ingress_.push(1, 5);
  ingress_.push(2, 7);   // releases instant 5 (A armed); 7 still buffered
  EXPECT_TRUE(fired_.empty());
  ingress_.push(3, 8);   // releases instant 7: the seq completes
  EXPECT_EQ(fired_, (std::vector<Timestamp>{7}));
  EXPECT_EQ(ingress_.buffered(), 1u);  // instant 8 held back
}

TEST_F(IngressTest, FlushReleasesEverything) {
  add(conj(primitive(1), primitive(2), 10));
  ingress_.set_skew(1000);
  ingress_.push(2, 9);
  ingress_.push(1, 3);
  EXPECT_TRUE(fired_.empty());
  ingress_.flush();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{9}));
  EXPECT_EQ(ingress_.buffered(), 0u);
}

TEST_F(IngressTest, SimultaneousStimuliStaySimultaneous) {
  // Two stimuli of one instant arriving separately must still evaluate as
  // one on_event batch (the neg blocker wins deterministically).
  add(neg(primitive(1), primitive(2), 10));
  ingress_.push(2, 5);
  ingress_.push(1, 5);
  ingress_.flush();
  EXPECT_TRUE(fired_.empty());
}

TEST_F(IngressTest, LateStimuliAreFedNotDropped) {
  add(disj(primitive(1), primitive(2)));
  ingress_.push(1, 100);  // watermark at 100
  ingress_.flush();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{100}));
  ingress_.push(2, 3);  // far beyond the (zero) skew: released immediately
  EXPECT_EQ(fired_, (std::vector<Timestamp>{100, 3}));
}

TEST_F(IngressTest, RejectsNegativeSkew) {
  EXPECT_THROW(ingress_.set_skew(-1), Error);
}

TEST_F(IngressTest, AdvanceToReleasesLikeAStimulusWithoutBufferingOne) {
  add(seq(primitive(1), primitive(2), 10));
  ingress_.set_skew(5);
  ingress_.push(1, 6);
  ingress_.push(2, 8);
  EXPECT_TRUE(fired_.empty());  // both instants inside the skew
  EXPECT_EQ(ingress_.buffered(), 2u);

  ingress_.advance_to(20);  // time-driven tick: watermark 15 passes both
  EXPECT_EQ(fired_, (std::vector<Timestamp>{8}));
  EXPECT_EQ(ingress_.buffered(), 0u);
  EXPECT_EQ(ingress_.watermark(), 15);

  // Moving time backwards is a no-op (the watermark is monotone).
  ingress_.advance_to(3);
  EXPECT_EQ(ingress_.watermark(), 15);
}

TEST_F(IngressTest, AdvanceToBoundsBufferedMemoryOnSparseStreams) {
  // Memory-growth regression: with a large skew and no later stimuli, the
  // reorder buffer grows without bound; periodic time-driven ticks keep it
  // at the skew window regardless of stream length.
  add(disj(primitive(1), primitive(2)));
  ingress_.set_skew(64);
  std::size_t max_buffered = 0;
  for (Timestamp t = 0; t < 4096; t += 16) {
    ingress_.push(1, t);
    ingress_.advance_to(t);  // the external clock keeps pace
    max_buffered = std::max(max_buffered, ingress_.buffered());
  }
  // Watermark trails `now` by the skew: at most 64/16 + 1 instants stay
  // buffered. 256 instants pushed; all but the final skew window released.
  EXPECT_LE(max_buffered, 5u);
  EXPECT_EQ(fired_.size(), 251u);
  ingress_.flush();
  EXPECT_EQ(fired_.size(), 256u);
}

// --- redelivery dedup (at-least-once ingress) -------------------------------

TEST_F(IngressTest, RedeliveredTokensAreDroppedWithinTheWindow) {
  add(seq(primitive(1), primitive(2), 10));
  ingress_.set_dedup_window(8);

  EXPECT_TRUE(ingress_.push(1, 5, 101));
  EXPECT_FALSE(ingress_.push(1, 5, 101));  // redelivery: dropped
  EXPECT_TRUE(ingress_.push(2, 7, 102));
  EXPECT_FALSE(ingress_.push(2, 7, 102));
  ingress_.flush();

  // The seq fired once; the duplicate stimuli never reached the detector.
  EXPECT_EQ(fired_, (std::vector<Timestamp>{7}));
  EXPECT_EQ(ingress_.dropped_duplicates(), 2u);
}

TEST_F(IngressTest, TokenZeroIsNeverDeduped) {
  add(disj(primitive(1), primitive(2)));
  ingress_.set_dedup_window(8);
  EXPECT_TRUE(ingress_.push(1, 1, 0));
  EXPECT_TRUE(ingress_.push(1, 2, 0));  // untracked: both accepted
  ingress_.flush();
  EXPECT_EQ(fired_.size(), 2u);
  EXPECT_EQ(ingress_.dropped_duplicates(), 0u);
}

TEST_F(IngressTest, DedupDisabledWindowAcceptsRedeliveries) {
  add(disj(primitive(1), primitive(2)));
  // Default window 0: tokens are ignored entirely.
  EXPECT_TRUE(ingress_.push(1, 1, 55));
  EXPECT_TRUE(ingress_.push(1, 2, 55));
  ingress_.flush();
  EXPECT_EQ(fired_.size(), 2u);
}

TEST_F(IngressTest, SameTokenDifferentProfilesAreDistinctStimuli) {
  // One redelivered event can legitimately stimulate several decomposed
  // leaves; dedup keys on (token, profile), not token alone.
  add(conj(primitive(1), primitive(2), 10));
  ingress_.set_dedup_window(8);
  EXPECT_TRUE(ingress_.push(1, 5, 77));
  EXPECT_TRUE(ingress_.push(2, 5, 77));   // same token, other leaf: kept
  EXPECT_FALSE(ingress_.push(1, 5, 77));  // true redelivery: dropped
  ingress_.flush();
  EXPECT_EQ(fired_, (std::vector<Timestamp>{5}));
  EXPECT_EQ(ingress_.dropped_duplicates(), 1u);
}

TEST_F(IngressTest, WindowEvictsOldestTokenFirst) {
  add(disj(primitive(1), primitive(2)));
  ingress_.set_dedup_window(3);

  EXPECT_TRUE(ingress_.push(1, 1, 201));
  EXPECT_TRUE(ingress_.push(1, 2, 202));
  EXPECT_TRUE(ingress_.push(1, 3, 203));
  EXPECT_TRUE(ingress_.push(1, 4, 204));  // evicts 201

  // A redelivery older than the window slips through (the documented
  // memory/exactness trade); fresher ones are still caught.
  EXPECT_TRUE(ingress_.push(1, 1, 201));
  EXPECT_FALSE(ingress_.push(1, 4, 204));
  EXPECT_EQ(ingress_.dropped_duplicates(), 1u);
}

// --- profile leaves and the textual form -----------------------------------

TEST(CompositeExprText, ProfileLeavesRoundTripThroughToString) {
  const SchemaPtr schema = testutil::example1_schema();
  const auto expr = parse_composite(
      schema,
      "neg({radiation >= 5}, seq({temperature >= 35}, {humidity >= 90}, "
      "w=10), w=7)");
  ASSERT_TRUE(has_profile_leaves(*expr));
  EXPECT_EQ(expr->kind(), CompositeExpr::Kind::kNeg);
  EXPECT_EQ(expr->window(), 7);
  EXPECT_EQ(expr->right()->kind(), CompositeExpr::Kind::kSeq);

  // to_string() emits the parseable form; a re-parse is structurally equal.
  const std::string text = expr->to_string();
  const auto again = parse_composite(schema, text);
  EXPECT_EQ(again->to_string(), text);

  const auto leaves = leaf_nodes(*expr);
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_TRUE(leaves[0]->leaf_profile()->matches(Event::from_pairs(
      schema,
      {{"temperature", 0}, {"humidity", 0}, {"radiation", 7}})));
}

TEST(CompositeExprText, WindowAcceptsBareIntegers) {
  const SchemaPtr schema = testutil::example1_schema();
  const auto expr =
      parse_composite(schema, "conj({temperature >= 35}, {humidity >= 90}, 4)");
  EXPECT_EQ(expr->window(), 4);
}

TEST(CompositeExprText, ParseFailures) {
  const SchemaPtr schema = testutil::example1_schema();
  const auto expect_parse_error = [&](std::string_view text) {
    try {
      parse_composite(schema, text);
      FAIL() << "expected Error{kParse} for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse) << text;
    }
  };
  expect_parse_error("");
  expect_parse_error("bogus({temperature >= 35}, {humidity >= 90}, 4)");
  expect_parse_error("seq({temperature >= 35}, {humidity >= 90})");  // window
  expect_parse_error("seq({temperature >= 35}, {humidity >= 90}, -3)");
  expect_parse_error("seq({temperature >= 35, {humidity >= 90}, 3)");
  expect_parse_error("disj({temperature >= 35}, {humidity >= 90}) junk");
  expect_parse_error("{not a profile}");
  expect_parse_error("seq({temperature >= 35}, {humidity >= 90}, 3");
}

TEST(CompositeExprText, IdLeavesDoNotClaimProfiles) {
  const auto expr = seq(primitive(1), primitive(2), 10);
  EXPECT_FALSE(has_profile_leaves(*expr));
  EXPECT_EQ(expr->left()->leaf_profile(), nullptr);
}

}  // namespace
}  // namespace genas
