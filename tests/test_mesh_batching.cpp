// Tests for batched link frames in the mesh runtime: publish_batch
// ingress, per-link coalescing metrics, outbox backpressure under a
// stalled peer, exact-cap legacy mode, and batched frames riding reliable
// links under injected faults.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "mesh/mesh.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

using mesh::MeshNetwork;
using mesh::MeshOptions;
using net::FaultPlan;

Event make_event(const SchemaPtr& schema, std::int64_t temperature,
                 Timestamp time) {
  return Event::from_pairs(
      schema, {{"temperature", temperature}, {"humidity", 50},
               {"radiation", 3}}, time);
}

std::vector<Event> burst(const SchemaPtr& schema, std::size_t count,
                         std::int64_t temperature = 40) {
  std::vector<Event> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    events.push_back(
        make_event(schema, temperature, static_cast<Timestamp>(i + 1)));
  }
  return events;
}

TEST(MeshBatching, PublishBatchDeliversEveryEvent) {
  const SchemaPtr schema = testutil::example1_schema();
  MeshNetwork mesh(schema, MeshOptions{});
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  std::atomic<std::size_t> delivered{0};
  mesh.subscribe(1, "temperature >= 35",
                 [&](mesh::NodeId, SubscriptionId, const Event&) {
                   delivered.fetch_add(1);
                 });
  mesh.wait_idle();

  constexpr std::size_t kEvents = 300;
  mesh.publish_batch(0, burst(schema, kEvents));
  mesh.wait_idle();
  EXPECT_EQ(delivered.load(), kEvents);
  EXPECT_EQ(mesh.first_error(), "");
  mesh.shutdown();
}

TEST(MeshBatching, PublishBatchCarriesDedupTokens) {
  // Replaying a tokenized batch must not double-fire a composite: the
  // tokens flow through the mesh ingress into the node broker's dedup
  // window exactly like publish(node, event, token) singles.
  const SchemaPtr schema = testutil::example1_schema();
  MeshOptions options;
  options.composite_dedup_window = 64;
  MeshNetwork mesh(schema, options);
  mesh.add_node();
  mesh.start();

  std::atomic<std::size_t> firings{0};
  mesh.subscribe_composite(
      0, "{temperature >= 35}",
      [&](mesh::NodeId, SubscriptionId, Timestamp) { firings.fetch_add(1); });
  mesh.wait_idle();

  std::vector<Event> events = burst(schema, 4);
  const std::vector<std::uint64_t> tokens = {11, 12, 13, 14};
  mesh.publish_batch(0, events, tokens);
  mesh.publish_batch(0, std::move(events), tokens);  // transport replay
  mesh.wait_idle();
  mesh.flush_composites();
  mesh.wait_idle();

  EXPECT_EQ(firings.load(), 4u);
  EXPECT_EQ(mesh.first_error(), "");
  mesh.shutdown();
}

TEST(MeshBatching, CoalescingSurfacesInTheStatsSnapshot) {
  const SchemaPtr schema = testutil::example1_schema();
  MeshNetwork mesh(schema, MeshOptions{});
  mesh.add_node();
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.connect(1, 2);
  mesh.start();

  std::atomic<std::size_t> delivered{0};
  mesh.subscribe(2, "temperature >= 35",
                 [&](mesh::NodeId, SubscriptionId, const Event&) {
                   delivered.fetch_add(1);
                 });
  mesh.wait_idle();

  constexpr std::size_t kEvents = 400;
  mesh.publish_batch(0, burst(schema, kEvents));
  mesh.wait_idle();
  ASSERT_EQ(delivered.load(), kEvents);

  const obs::StatsSnapshot snapshot = mesh.stats_snapshot();
  const obs::MetricSnapshot* per_frame =
      snapshot.find("genas_mesh_link_events_per_frame");
  ASSERT_NE(per_frame, nullptr);
  const std::uint64_t frames = per_frame->count();
  ASSERT_GT(frames, 0u);
  // Two hops carried 400 events each; coalescing must beat one event per
  // frame by a wide margin (the default cap is 256 per frame).
  EXPECT_GE(per_frame->sum, 2 * kEvents);
  EXPECT_GT(per_frame->sum / frames, 8u)
      << "events per frame: " << per_frame->sum << " / " << frames;
  EXPECT_GT(snapshot.value("genas_mesh_batch_flush_cap_total") +
                snapshot.value("genas_mesh_batch_flush_round_total"),
            0);
  mesh.shutdown();
}

TEST(MeshBatching, CapOfOneKeepsLegacyPerEventFrames) {
  const SchemaPtr schema = testutil::example1_schema();
  MeshOptions options;
  options.link_batch_max = 1;
  MeshNetwork mesh(schema, options);
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  std::atomic<std::size_t> delivered{0};
  mesh.subscribe(1, "temperature >= 35",
                 [&](mesh::NodeId, SubscriptionId, const Event&) {
                   delivered.fetch_add(1);
                 });
  mesh.wait_idle();

  constexpr std::size_t kEvents = 50;
  mesh.publish_batch(0, burst(schema, kEvents));
  mesh.wait_idle();
  ASSERT_EQ(delivered.load(), kEvents);

  // Every frame carried exactly one event: the histogram's sum equals its
  // observation count.
  const obs::StatsSnapshot snapshot = mesh.stats_snapshot();
  const obs::MetricSnapshot* per_frame =
      snapshot.find("genas_mesh_link_events_per_frame");
  ASSERT_NE(per_frame, nullptr);
  EXPECT_EQ(per_frame->sum, per_frame->count());
  EXPECT_EQ(per_frame->sum, kEvents);
  mesh.shutdown();
}

TEST(MeshBatching, StalledPeerStormIsBoundedByTheOutboxCap) {
  // Regression for the unbounded staging deque: a subscriber that stops
  // consuming must park publishers at the ingress cap instead of letting
  // the publisher-side outbox grow with the whole storm.
  const SchemaPtr schema = testutil::example1_schema();
  MeshOptions options;
  options.mailbox_capacity = 8;
  options.outbox_capacity = 16;
  MeshNetwork mesh(schema, options);
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<std::size_t> delivered{0};
  mesh.subscribe(1, "temperature >= 35",
                 [&](mesh::NodeId, SubscriptionId, const Event&) {
                   std::unique_lock<std::mutex> lock(gate_mutex);
                   gate_cv.wait(lock, [&] { return gate_open; });
                   delivered.fetch_add(1);
                 });
  mesh.wait_idle();

  constexpr std::size_t kEvents = 400;
  std::thread publisher([&] {
    for (std::size_t i = 0; i < kEvents; ++i) {
      mesh.publish(0, make_event(schema, 40, static_cast<Timestamp>(i + 1)));
    }
  });

  // Let the storm hit the stalled subscriber, then release it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    const std::scoped_lock lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  publisher.join();
  mesh.wait_idle();
  EXPECT_EQ(delivered.load(), kEvents);
  EXPECT_EQ(mesh.first_error(), "");

  // The staged outbox never grew past the cap plus the traffic that was
  // already admitted into the round being drained when the stall began.
  const obs::StatsSnapshot snapshot = mesh.stats_snapshot();
  std::int64_t outbox_hwm = 0;
  for (const obs::MetricSnapshot& metric : snapshot.metrics) {
    if (metric.name.rfind("genas_mesh_link_outbox_depth_highwater", 0) == 0) {
      outbox_hwm = std::max(outbox_hwm, metric.value);
    }
  }
  const std::int64_t bound = static_cast<std::int64_t>(
      options.outbox_capacity + options.mailbox_capacity + 256);
  EXPECT_LE(outbox_hwm, bound)
      << "outbox high-water mark " << outbox_hwm << " exceeds " << bound;
  EXPECT_GT(outbox_hwm, 0);
  mesh.shutdown();
}

TEST(MeshBatching, ShutdownUnblocksPublishersParkedAtTheCap) {
  const SchemaPtr schema = testutil::example1_schema();
  MeshOptions options;
  options.mailbox_capacity = 4;
  options.outbox_capacity = 4;
  MeshNetwork mesh(schema, options);
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  mesh.subscribe(1, "temperature >= 35",
                 [&](mesh::NodeId, SubscriptionId, const Event&) {
                   std::unique_lock<std::mutex> lock(gate_mutex);
                   gate_cv.wait(lock, [&] { return gate_open; });
                 });
  mesh.wait_idle();

  std::atomic<bool> rejected{false};
  std::thread publisher([&] {
    try {
      for (std::size_t i = 0; i < 4000; ++i) {
        mesh.publish(0,
                     make_event(schema, 40, static_cast<Timestamp>(i + 1)));
      }
    } catch (const Error& e) {
      rejected.store(e.code() == ErrorCode::kState);
    }
  });

  // Give the publisher time to park at the cap, then open the delivery
  // gate (shutdown drains admitted traffic, so the stalled callback must
  // not block it) and shut down underneath the parked publisher.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    const std::scoped_lock lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  mesh.shutdown();
  publisher.join();
  // The publisher either finished its storm before the shutdown gate fell
  // or was woken and rejected with kState — it must not hang (join above).
  if (rejected.load()) SUCCEED();
}

TEST(MeshBatching, BatchedFramesRideReliableLinksUnderFaults) {
  // Loss and duplication hit whole batch frames now; go-back-N must still
  // deliver every event exactly once, in order, with batching left at its
  // default cap.
  const SchemaPtr schema = testutil::example1_schema();
  auto plan = std::make_shared<FaultPlan>(77);
  plan->drop_chance(0, 1, 0.4, 30);
  plan->duplicate_chance(0, 1, 0.4, 30);

  MeshOptions options;
  options.reliable_links = true;
  options.fault_plan = plan;
  options.link_retransmit_interval = std::chrono::microseconds(500);
  MeshNetwork mesh(schema, options);
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  std::mutex order_mutex;
  std::vector<Timestamp> order;
  mesh.subscribe(1, "temperature >= 35",
                 [&](mesh::NodeId, SubscriptionId, const Event& event) {
                   const std::scoped_lock lock(order_mutex);
                   order.push_back(event.time());
                 });
  mesh.wait_idle();

  constexpr std::size_t kEvents = 500;
  // Many small ingress batches: enough distinct link frames for the fault
  // plan to hit while coalescing still happens within each drain round.
  for (std::size_t chunk = 0; chunk < kEvents; chunk += 20) {
    std::vector<Event> events;
    events.reserve(20);
    for (std::size_t i = chunk; i < chunk + 20; ++i) {
      events.push_back(make_event(schema, 40, static_cast<Timestamp>(i + 1)));
    }
    mesh.publish_batch(0, std::move(events));
  }
  mesh.wait_idle();

  {
    const std::scoped_lock lock(order_mutex);
    ASSERT_EQ(order.size(), kEvents);
    for (std::size_t i = 0; i < kEvents; ++i) {
      EXPECT_EQ(order[i], static_cast<Timestamp>(i + 1));
    }
  }
  EXPECT_EQ(mesh.first_error(), "");
  mesh.shutdown();
}

TEST(MeshBatching, NodeBrokerExposesTheEmbeddedBroker) {
  const SchemaPtr schema = testutil::example1_schema();
  MeshNetwork mesh(schema, MeshOptions{});
  mesh.add_node();
  EXPECT_EQ(mesh.node_broker(0).schema(), schema);
  EXPECT_THROW(mesh.node_broker(7), Error);
}

}  // namespace
}  // namespace genas
