// Tests for the elementary subrange decomposition (≤ 2p−1 subranges + D_0).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tree/decomposition.hpp"

namespace genas {
namespace {

TEST(Decomposition, NoConstraintsYieldsOneZeroCell) {
  const auto d = decompose({0, 9}, {});
  ASSERT_EQ(d.cells.size(), 1u);
  EXPECT_EQ(d.cells[0].interval, Interval(0, 9));
  EXPECT_TRUE(d.cells[0].is_zero());
  EXPECT_EQ(d.zero_size(), 10);
  EXPECT_EQ(d.covered_cell_count(), 0u);
}

TEST(Decomposition, OverlappingRangesSplitAtBoundaries) {
  // Paper Fig. 1: overlapping profile ranges create subranges.
  const IntervalSet a({{2, 7}});
  const IntervalSet b({{5, 9}});
  const auto d = decompose({0, 9}, {&a, &b});
  // Cells: [0,1] zero, [2,4] {a}, [5,7] {a,b}, [8,9] {b}.
  ASSERT_EQ(d.cells.size(), 4u);
  EXPECT_EQ(d.cells[0].interval, Interval(0, 1));
  EXPECT_TRUE(d.cells[0].is_zero());
  EXPECT_EQ(d.cells[1].interval, Interval(2, 4));
  EXPECT_EQ(d.cells[1].accepters, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(d.cells[2].interval, Interval(5, 7));
  EXPECT_EQ(d.cells[2].accepters, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(d.cells[3].interval, Interval(8, 9));
  EXPECT_EQ(d.cells[3].accepters, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(d.zero_size(), 2);
  EXPECT_EQ(d.zero_subdomain(), IntervalSet({{0, 1}}));
}

TEST(Decomposition, IdenticalConstraintsMergeIntoOneCell) {
  const IntervalSet a({{3, 6}});
  const IntervalSet b({{3, 6}});
  const auto d = decompose({0, 9}, {&a, &b});
  ASSERT_EQ(d.cells.size(), 3u);
  EXPECT_EQ(d.cells[1].accepters, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(d.covered_cell_count(), 1u);
}

TEST(Decomposition, MultiIntervalConstraint) {
  const IntervalSet a({{0, 2}, {8, 9}});  // e.g. an "outside" predicate
  const auto d = decompose({0, 9}, {&a});
  ASSERT_EQ(d.cells.size(), 3u);
  EXPECT_FALSE(d.cells[0].is_zero());
  EXPECT_TRUE(d.cells[1].is_zero());
  EXPECT_FALSE(d.cells[2].is_zero());
}

TEST(Decomposition, LocateFindsContainingCell) {
  const IntervalSet a({{2, 7}});
  const IntervalSet b({{5, 9}});
  const auto d = decompose({0, 9}, {&a, &b});
  EXPECT_EQ(d.locate(0), 0u);
  EXPECT_EQ(d.locate(2), 1u);
  EXPECT_EQ(d.locate(6), 2u);
  EXPECT_EQ(d.locate(9), 3u);
}

TEST(Decomposition, EmptyUniverseRejected) {
  EXPECT_THROW(decompose(Interval{}, {}), Error);
}

// Property: for p random interval constraints, the number of covered cells
// never exceeds 2p−1 (the paper's bound for single-interval range tests),
// cells tile the universe exactly, and accepter sets are point-wise correct.
class DecompositionProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DecompositionProperty, TilesAndBoundsHold) {
  Rng rng(GetParam());
  const Interval universe{0, 99};
  const std::size_t p = 1 + rng.below(12);
  std::vector<IntervalSet> storage;
  storage.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    const DomainIndex lo = rng.range(0, 99);
    const DomainIndex hi = rng.range(lo, 99);
    storage.push_back(IntervalSet::single({lo, hi}));
  }
  std::vector<const IntervalSet*> constraints;
  for (const auto& s : storage) constraints.push_back(&s);

  const auto d = decompose(universe, constraints);

  // Tiling: cells are contiguous and cover the universe.
  EXPECT_EQ(d.cells.front().interval.lo, universe.lo);
  EXPECT_EQ(d.cells.back().interval.hi, universe.hi);
  for (std::size_t i = 1; i < d.cells.size(); ++i) {
    EXPECT_EQ(d.cells[i].interval.lo, d.cells[i - 1].interval.hi + 1);
  }

  // Paper bound: at most 2p−1 referenced subranges.
  EXPECT_LE(d.covered_cell_count(), 2 * p - 1);

  // Point-wise accepter correctness on every value.
  for (DomainIndex v = universe.lo; v <= universe.hi; ++v) {
    const Cell& cell = d.cells[d.locate(v)];
    for (std::uint32_t c = 0; c < p; ++c) {
      const bool in_cell =
          std::find(cell.accepters.begin(), cell.accepters.end(), c) !=
          cell.accepters.end();
      EXPECT_EQ(in_cell, storage[c].contains(v)) << "v=" << v << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DecompositionProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace genas
