// Tests for the batched link frames (wire/batch): encode/decode oracles for
// kEventBatch / kDeliveryBatch, the arena-backed zero-allocation decoder,
// single-element degeneration to the legacy frames, and the malformed-input
// paths — truncation sweeps, byte flips, count inflation, and corrupt
// batches nested inside kLinkFrame envelopes — mirroring test_wire_codec.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"
#include "wire/batch.hpp"
#include "wire/codec.hpp"

// Global allocation counter for the zero-allocation decode oracle. Counting
// every operator new in the binary is coarse, but the bracketed sections
// run single-threaded with no other live allocators, so the delta is
// exactly the decoder's.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

// GCC's -Wmismatched-new-delete pairs the free() here against pointers it
// tracked out of the replacement operator new above and flags them as
// mismatched; the pairing is malloc/free on both sides, so the warning is
// a false positive of the replacement itself.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace genas {
namespace {

using Frame = std::vector<std::uint8_t>;

void expect_parse_failure(const Frame& frame, const SchemaPtr& schema,
                          const std::string& context) {
  try {
    wire::decode_message(frame, schema);
    FAIL() << context << ": malformed frame decoded without error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse) << context << ": " << e.what();
  }
}

Event make_event(const SchemaPtr& schema, std::int64_t temperature,
                 Timestamp time) {
  return Event::from_pairs(
      schema, {{"temperature", temperature}, {"humidity", 50},
               {"radiation", 3}}, time);
}

std::vector<Event> make_events(const SchemaPtr& schema, std::size_t count) {
  std::vector<Event> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    events.push_back(
        make_event(schema, -10 + static_cast<std::int64_t>(i % 50),
                   static_cast<Timestamp>(i + 1)));
  }
  return events;
}

TEST(WireBatch, EventBatchRoundTrips) {
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<Event> events = make_events(schema, 17);

  const Frame frame = wire::frame_event_batch(events);
  EXPECT_EQ(wire::peek_type(frame), wire::MessageType::kEventBatch);

  const wire::Message message = wire::decode_message(frame, schema);
  const auto* batch = std::get_if<wire::EventBatchMsg>(&message);
  ASSERT_NE(batch, nullptr);
  ASSERT_EQ(batch->events.size(), events.size());
  EXPECT_TRUE(batch->tokens.empty());  // no tokens were framed
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(batch->events[i].indices(), events[i].indices());
    EXPECT_EQ(batch->events[i].time(), events[i].time());
  }
}

TEST(WireBatch, EventBatchCarriesTokens) {
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<Event> events = make_events(schema, 5);
  const std::vector<std::uint64_t> tokens = {0, 7, 0, 0xFFFFFFFFFFFFFFFFull,
                                             42};

  const Frame frame = wire::frame_event_batch(events, tokens);
  const wire::Message message = wire::decode_message(frame, schema);
  const auto* batch = std::get_if<wire::EventBatchMsg>(&message);
  ASSERT_NE(batch, nullptr);
  ASSERT_EQ(batch->events.size(), events.size());
  ASSERT_EQ(batch->tokens.size(), tokens.size());
  EXPECT_EQ(batch->tokens, tokens);
}

TEST(WireBatch, AllZeroTokensElideTheTokenRun) {
  // A token span of all zeros carries no information; the frame must be
  // byte-identical to the token-free encoding.
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<Event> events = make_events(schema, 4);
  const std::vector<std::uint64_t> zeros(events.size(), 0);
  EXPECT_EQ(wire::frame_event_batch(events, zeros),
            wire::frame_event_batch(events));
}

TEST(WireBatch, SingleEventDegeneratesToTheLegacyFrame) {
  // A batch of one token-free event must be byte-identical to frame_event:
  // link_batch_max = 1 then reproduces the pre-batching wire traffic
  // exactly, and old decoders keep understanding light traffic.
  const SchemaPtr schema = testutil::example1_schema();
  const Event event = make_event(schema, 21, 99);

  wire::EventBatchBuilder builder;
  builder.append(event);
  EXPECT_EQ(builder.take_frame(), wire::frame_event(event));

  // With a nonzero token there is no legacy equivalent; the builder must
  // emit a kEventBatch that round-trips the token.
  builder.append(event, 17);
  const Frame tagged = builder.take_frame();
  EXPECT_EQ(wire::peek_type(tagged), wire::MessageType::kEventBatch);
  const wire::Message message = wire::decode_message(tagged, schema);
  const auto* batch = std::get_if<wire::EventBatchMsg>(&message);
  ASSERT_NE(batch, nullptr);
  ASSERT_EQ(batch->tokens.size(), 1u);
  EXPECT_EQ(batch->tokens[0], 17u);
}

TEST(WireBatch, SingleDeliveryDegeneratesToTheLegacyFrame) {
  const SchemaPtr schema = testutil::example1_schema();
  const Event event = make_event(schema, -3, 5);

  wire::DeliveryBatchBuilder builder;
  builder.append(11, event);
  EXPECT_EQ(builder.take_frame(), wire::frame_delivery(11, event));
}

TEST(WireBatch, BuilderResetDiscardsThePendingFrame) {
  const SchemaPtr schema = testutil::example1_schema();
  const Event event = make_event(schema, 30, 1);

  wire::EventBatchBuilder builder;
  builder.append(event, 5);
  builder.append(event, 6);
  builder.reset();
  EXPECT_TRUE(builder.empty());

  // The builder is reusable after a reset, with no leftover tokens.
  builder.append(event);
  EXPECT_EQ(builder.take_frame(), wire::frame_event(event));
}

TEST(WireBatch, DeliveryBatchRoundTrips) {
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<Event> events = make_events(schema, 9);
  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < events.size(); ++i) keys.push_back(100 + i);

  const Frame frame = wire::frame_delivery_batch(keys, events);
  EXPECT_EQ(wire::peek_type(frame), wire::MessageType::kDeliveryBatch);

  const wire::Message message = wire::decode_message(frame, schema);
  const auto* batch = std::get_if<wire::DeliveryBatchMsg>(&message);
  ASSERT_NE(batch, nullptr);
  ASSERT_EQ(batch->keys.size(), keys.size());
  EXPECT_EQ(batch->keys, keys);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(batch->events[i].indices(), events[i].indices());
    EXPECT_EQ(batch->events[i].time(), events[i].time());
  }
}

TEST(WireBatch, ArenaDecoderMatchesTheGenericDecoder) {
  const SchemaPtr schema = testutil::example1_schema();
  Rng rng(2026);
  wire::EventArena arena;
  std::vector<Event> events;
  std::vector<std::uint64_t> tokens;
  for (int round = 0; round < 10; ++round) {
    const std::size_t count = 1 + rng.below(40);
    std::vector<Event> originals = make_events(schema, count);
    std::vector<std::uint64_t> sent_tokens;
    const bool tagged = round % 2 == 0;
    if (tagged) {
      for (std::size_t i = 0; i < count; ++i) {
        sent_tokens.push_back(rng.below(1u << 30));
      }
    }
    const Frame frame = wire::frame_event_batch(originals, sent_tokens);

    events.clear();
    tokens.clear();
    const std::size_t decoded =
        wire::decode_event_batch(frame, schema, arena, events, tokens);
    ASSERT_EQ(decoded, count);
    ASSERT_EQ(events.size(), count);
    // The arena decoder always yields one token per event (zeros when the
    // frame carried none), unlike the generic decoder's empty vector.
    ASSERT_EQ(tokens.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(events[i].indices(), originals[i].indices());
      EXPECT_EQ(events[i].time(), originals[i].time());
      EXPECT_EQ(tokens[i], tagged ? sent_tokens[i] : 0u);
    }
    arena.recycle_all(events);
  }
  EXPECT_GT(arena.spare(), 0u);
}

TEST(WireBatch, WarmArenaDecodesWithZeroAllocations) {
  // The acceptance bar for the decoder: once the arena holds recycled
  // index storage and the scratch vectors have capacity, decoding a batch
  // performs zero heap allocations — no per-event vector, no per-event
  // Event box, nothing.
  const SchemaPtr schema = testutil::example1_schema();
  constexpr std::size_t kBatch = 64;
  const Frame frame = wire::frame_event_batch(make_events(schema, kBatch));

  wire::EventArena arena;
  std::vector<Event> events;
  std::vector<std::uint64_t> tokens;
  events.reserve(kBatch);
  tokens.reserve(kBatch);

  // Warm-up pass seeds the arena's free-list.
  wire::decode_event_batch(frame, schema, arena, events, tokens);
  arena.recycle_all(events);
  tokens.clear();

  const std::uint64_t before = g_allocations.load();
  wire::decode_event_batch(frame, schema, arena, events, tokens);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "warm batch decode allocated " << (after - before) << " times";
  ASSERT_EQ(events.size(), kBatch);
  arena.recycle_all(events);
}

TEST(WireBatch, EveryTruncationIsRejected) {
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<Event> events = make_events(schema, 3);
  const std::vector<std::uint64_t> tokens = {1, 2, 3};
  const std::vector<std::uint64_t> keys = {5, 6, 7};
  const std::vector<Frame> frames = {
      wire::frame_event_batch(events),
      wire::frame_event_batch(events, tokens),
      wire::frame_delivery_batch(keys, events),
  };
  wire::EventArena arena;
  std::vector<Event> scratch;
  std::vector<std::uint64_t> token_scratch;
  for (const Frame& frame : frames) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      const Frame truncated(frame.begin(),
                            frame.begin() + static_cast<std::ptrdiff_t>(cut));
      expect_parse_failure(truncated, schema,
                           "truncated at " + std::to_string(cut));
      if (wire::peek_type(frame) == wire::MessageType::kEventBatch) {
        scratch.clear();
        token_scratch.clear();
        EXPECT_THROW(wire::decode_event_batch(truncated, schema, arena,
                                              scratch, token_scratch),
                     Error)
            << "arena decode accepted truncation at " << cut;
      }
    }
    Frame padded = frame;
    padded.push_back(0);
    expect_parse_failure(padded, schema, "trailing garbage");
  }
}

TEST(WireBatch, ByteFlipFuzzNeverCrashes) {
  // Flipping any single byte must either still decode (payload bytes can
  // land on another valid value) or throw Error{kParse} — and the generic
  // and arena decoders must agree on which.
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<Event> events = make_events(schema, 6);
  const std::vector<std::uint64_t> tokens = {9, 8, 7, 6, 5, 4};
  const std::vector<std::uint64_t> keys = {1, 2, 3, 4, 5, 6};
  const std::vector<Frame> frames = {
      wire::frame_event_batch(events),
      wire::frame_event_batch(events, tokens),
      wire::frame_delivery_batch(keys, events),
  };
  Rng rng(99);
  wire::EventArena arena;
  std::vector<Event> scratch;
  std::vector<std::uint64_t> token_scratch;
  for (const Frame& frame : frames) {
    for (std::size_t at = 0; at < frame.size(); ++at) {
      Frame corrupted = frame;
      corrupted[at] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      bool generic_ok = true;
      try {
        (void)wire::decode_message(corrupted, schema);
      } catch (const Error& e) {
        generic_ok = false;
        EXPECT_EQ(e.code(), ErrorCode::kParse)
            << "byte " << at << ": " << e.what();
      }
      bool still_event_batch = false;
      try {
        still_event_batch =
            wire::peek_type(corrupted) == wire::MessageType::kEventBatch;
      } catch (const Error&) {
      }
      if (still_event_batch) {
        scratch.clear();
        token_scratch.clear();
        bool arena_ok = true;
        try {
          wire::decode_event_batch(corrupted, schema, arena, scratch,
                                   token_scratch);
        } catch (const Error& e) {
          arena_ok = false;
          EXPECT_EQ(e.code(), ErrorCode::kParse)
              << "byte " << at << ": " << e.what();
        }
        EXPECT_EQ(arena_ok, generic_ok)
            << "decoders disagree on byte " << at;
      }
    }
  }
}

TEST(WireBatch, InflatedCountsAreRejectedBeforeAllocation) {
  // A batch whose count field claims more events than the buffer holds
  // must fail the count sanity bound, not attempt a giant allocation.
  const SchemaPtr schema = testutil::example1_schema();
  for (const wire::MessageType type :
       {wire::MessageType::kEventBatch, wire::MessageType::kDeliveryBatch}) {
    wire::Writer w;
    w.u16(wire::kMagic);
    w.u8(wire::kWireVersion);
    w.u8(static_cast<std::uint8_t>(type));
    w.u32(4);            // payload: exactly the count field below
    w.u32(0x40000000u);  // claims a billion events
    expect_parse_failure(w.take(), schema, "inflated count");
  }

  // Same with a plausible-looking payload behind the count: the claimed
  // count times the per-event stride still overruns the buffer.
  const std::vector<Event> events = make_events(schema, 2);
  Frame frame = wire::frame_event_batch(events);
  frame[wire::kFrameHeaderSize] = 200;  // count LSB: 2 -> 200 events
  expect_parse_failure(frame, schema, "count outruns payload");
  wire::EventArena arena;
  std::vector<Event> scratch;
  std::vector<std::uint64_t> token_scratch;
  EXPECT_THROW(
      wire::decode_event_batch(frame, schema, arena, scratch, token_scratch),
      Error);
}

TEST(WireBatch, EmptyBatchesAreRejected) {
  // A zero count is never produced by the builders (take_frame asserts on
  // empty) and is a parse error on receive.
  const SchemaPtr schema = testutil::example1_schema();
  for (const wire::MessageType type :
       {wire::MessageType::kEventBatch, wire::MessageType::kDeliveryBatch}) {
    wire::Writer w;
    w.u16(wire::kMagic);
    w.u8(wire::kWireVersion);
    w.u8(static_cast<std::uint8_t>(type));
    w.u32(type == wire::MessageType::kEventBatch ? 5 : 4);
    w.u32(0);  // zero events
    if (type == wire::MessageType::kEventBatch) w.u8(0);
    expect_parse_failure(w.take(), schema, "empty batch");
  }
}

TEST(WireBatch, BadTokenFlagIsRejected) {
  const SchemaPtr schema = testutil::example1_schema();
  Frame frame = wire::frame_event_batch(make_events(schema, 2));
  frame[wire::kFrameHeaderSize + 4] = 2;  // has_tokens must be 0 or 1
  expect_parse_failure(frame, schema, "token flag 2");
}

TEST(WireBatch, OutOfDomainEntriesAreRejected) {
  // Corrupt one event's index to just past its domain: both decoders must
  // reject the whole frame (no partial acceptance of earlier events).
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<Event> events = make_events(schema, 3);
  Frame frame = wire::frame_event_batch(events);
  // Second event, first attribute: count(4) + flag(1) + one event back.
  const std::size_t stride = schema->attribute_count() * 8 + 8;
  const std::size_t at = wire::kFrameHeaderSize + 5 + stride;
  frame[at] = 0xFF;
  frame[at + 1] = 0xFF;
  expect_parse_failure(frame, schema, "out-of-domain index");
  wire::EventArena arena;
  std::vector<Event> scratch;
  std::vector<std::uint64_t> token_scratch;
  EXPECT_THROW(
      wire::decode_event_batch(frame, schema, arena, scratch, token_scratch),
      Error);
}

TEST(WireBatch, NestedLinkFrameProbesAndDecodes) {
  // A batch rides reliable links inside a kLinkFrame envelope: the
  // envelope must round-trip it, and a corrupted nested batch must be a
  // parse error on the inner decode, not an envelope failure.
  const SchemaPtr schema = testutil::example1_schema();
  const std::vector<Event> events = make_events(schema, 8);
  const Frame inner = wire::frame_event_batch(events);
  const Frame envelope = wire::frame_link(42, inner);

  const wire::Message message = wire::decode_message(envelope, schema);
  const auto* link = std::get_if<wire::LinkFrameMsg>(&message);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->sequence, 42u);
  ASSERT_EQ(link->inner, inner);

  const wire::Message nested = wire::decode_message(link->inner, schema);
  const auto* batch = std::get_if<wire::EventBatchMsg>(&nested);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->events.size(), events.size());

  // Truncating the nested frame (while keeping the envelope framing
  // consistent) must be rejected by the envelope's inner-frame check.
  Frame cut_inner(inner.begin(), inner.end() - 8);
  expect_parse_failure(wire::frame_link(42, cut_inner), schema,
                       "nested truncation");

  // Byte flips inside the envelope: never anything but parse errors.
  Rng rng(7);
  for (std::size_t at = 0; at < envelope.size(); ++at) {
    Frame corrupted = envelope;
    corrupted[at] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    try {
      const wire::Message m = wire::decode_message(corrupted, schema);
      if (const auto* l = std::get_if<wire::LinkFrameMsg>(&m)) {
        (void)wire::decode_message(l->inner, schema);
      }
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse)
          << "byte " << at << ": " << e.what();
    }
  }
}

TEST(WireBatch, MixedSchemasAreRefusedByTheBuilder) {
  const SchemaPtr schema = testutil::example1_schema();
  SchemaBuilder other_builder;
  other_builder.add_integer("only", 0, 10);
  const SchemaPtr other = other_builder.build();

  wire::EventBatchBuilder builder;
  builder.append(make_event(schema, 20, 1));
  EXPECT_THROW(builder.append(Event::from_pairs(other, {{"only", 3}})),
               Error);
}

}  // namespace
}  // namespace genas
