// Socket transport tests: the TCP channel's incremental frame reassembly,
// the BrokerServer/RemoteBrokerClient protocol, client-disconnect lifecycle
// cleanup (exactly once, including refcounted composite leaves), and the
// multi-process loopback oracle — a socket-driven workload must produce the
// same delivery and composite-firing multisets as the in-process mesh.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "ens/broker.hpp"
#include "mesh/mesh.hpp"
#include "net/broker_server.hpp"
#include "net/remote_client.hpp"
#include "net/socket_channel.hpp"
#include "profile/parser.hpp"
#include "test_util.hpp"
#include "wire/codec.hpp"

namespace genas {
namespace {

using net::BrokerServer;
using net::RemoteBrokerClient;
using net::ServerOptions;
using net::SocketChannel;
using net::SocketListener;
using net::SocketTimeouts;
using namespace std::chrono_literals;

/// Polls `condition` for up to five seconds (socket teardown and mesh
/// retraction are asynchronous; tests assert the converged state).
bool eventually(const std::function<bool()>& condition) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return condition();
}

// ---------------------------------------------------------------------------
// SocketChannel: framing over a real loopback socket.

TEST(SocketChannel, FramesSurviveArbitrarySplitsAndCoalescing) {
  const SchemaPtr schema = testutil::example1_schema();
  SocketListener listener(0);

  SocketChannel client =
      SocketChannel::connect_to("127.0.0.1", listener.port());
  std::optional<SocketChannel> server = listener.accept(5000ms);
  ASSERT_TRUE(server.has_value());

  const std::vector<std::vector<std::uint8_t>> frames = {
      wire::frame_schema(*schema),
      wire::frame_subscribe(1, parse_profile(schema, "temperature >= 35")),
      wire::frame_event(Event::from_pairs(
          schema, {{"temperature", 40}, {"humidity", 9}, {"radiation", 1}})),
      wire::frame_flush(7),
  };

  // Worst-case fragmentation: every frame dribbles in one byte at a time.
  std::thread writer([&] {
    for (const auto& frame : frames) {
      for (const std::uint8_t byte : frame) {
        client.write_bytes(std::span(&byte, 1));
      }
    }
    // Then the same frames again, coalesced into a single send.
    std::vector<std::uint8_t> all;
    for (const auto& frame : frames) {
      all.insert(all.end(), frame.begin(), frame.end());
    }
    client.write_bytes(all);
    client.shutdown();
  });

  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& expected : frames) {
      std::optional<std::vector<std::uint8_t>> got = server->read_frame();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, expected);
    }
  }
  EXPECT_FALSE(server->read_frame().has_value());  // clean EOF
  writer.join();
}

TEST(SocketChannel, MidFrameEofIsStateNotParse) {
  SocketListener listener(0);
  SocketChannel client =
      SocketChannel::connect_to("127.0.0.1", listener.port());
  std::optional<SocketChannel> server = listener.accept(5000ms);
  ASSERT_TRUE(server.has_value());

  const std::vector<std::uint8_t> frame = wire::frame_unsubscribe(3);
  client.write_bytes(std::span(frame.data(), frame.size() - 2));
  client.shutdown();

  try {
    server->read_frame();
    FAIL() << "mid-frame EOF must not read as a clean close";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kState) << e.what();
  }
}

TEST(SocketChannel, CorruptStreamIsParse) {
  SocketListener listener(0);
  SocketChannel client =
      SocketChannel::connect_to("127.0.0.1", listener.port());
  std::optional<SocketChannel> server = listener.accept(5000ms);
  ASSERT_TRUE(server.has_value());

  const std::vector<std::uint8_t> garbage(16, 0xFF);
  client.write_bytes(garbage);

  try {
    server->read_frame();
    FAIL() << "corrupt bytes must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse) << e.what();
  }
}

TEST(SocketChannel, IdleTimeoutBoundsTheFirstByteWait) {
  SocketListener listener(0);
  SocketChannel client =
      SocketChannel::connect_to("127.0.0.1", listener.port());
  std::optional<SocketChannel> server = listener.accept(5000ms);
  ASSERT_TRUE(server.has_value());

  EXPECT_THROW(server->read_frame(20ms), Error);
  (void)client;
}

TEST(SocketChannel, ConnectToClosedPortFails) {
  std::uint16_t dead_port = 0;
  {
    SocketListener probe(0);
    dead_port = probe.port();
  }  // closed: nothing listens there now
  SocketTimeouts timeouts;
  timeouts.connect = 500ms;
  EXPECT_THROW(SocketChannel::connect_to("127.0.0.1", dead_port, timeouts),
               Error);
}

// ---------------------------------------------------------------------------
// BrokerServer + RemoteBrokerClient against a standalone broker.

TEST(BrokerServerSocket, FlushBarrierDrainsOwnDeliveries) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  BrokerServer server(broker);
  server.start();

  RemoteBrokerClient client("127.0.0.1", server.port());
  std::mutex mutex;
  std::vector<std::string> seen;
  client.subscribe("temperature >= 35", [&](const Notification& n) {
    const std::scoped_lock lock(mutex);
    seen.push_back(n.event.to_string());
  });

  constexpr int kEvents = 100;
  for (int i = 0; i < kEvents; ++i) {
    client.publish("temperature = 40; humidity = " + std::to_string(i % 100) +
                       "; radiation = 1",
                   i);
  }
  client.flush();

  // The barrier contract: when flush() returns, every delivery caused by
  // this client's earlier publishes has been dispatched locally.
  {
    const std::scoped_lock lock(mutex);
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(kEvents));
  }
  EXPECT_EQ(client.deliveries(), static_cast<std::uint64_t>(kEvents));

  client.close();
  server.stop();
  EXPECT_EQ(server.first_error(), "");
}

TEST(BrokerServerSocket, CompositeSubscriptionsFireOverTheSocket) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  BrokerServer server(broker);
  server.start();

  RemoteBrokerClient client("127.0.0.1", server.port());
  std::mutex mutex;
  std::vector<Timestamp> fired;
  const SubscriptionId csub = client.subscribe_composite(
      "seq({temperature >= 35}, {humidity >= 90}, w=10)",
      [&](const CompositeFiring& f) {
        const std::scoped_lock lock(mutex);
        fired.push_back(f.time);
      });
  ASSERT_NE(csub, 0u);

  client.publish("temperature = 40; humidity = 10; radiation = 1", 1);
  client.publish("temperature = 0; humidity = 95; radiation = 1", 4);
  client.flush();  // drains buffered composite instants before replying

  {
    const std::scoped_lock lock(mutex);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], 4);
  }
  EXPECT_EQ(client.firings(), 1u);

  client.close();
  server.stop();
  EXPECT_EQ(server.first_error(), "");
}

// Satellite: a client that disconnects mid-stream while it still holds
// plain and composite subscriptions (with refcount-deduplicated leaves)
// must have everything retracted exactly once.
TEST(BrokerServerSocket, DisconnectRetractsSubscriptionsExactlyOnce) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  const std::size_t base_subs = broker.subscription_count();
  const std::size_t base_comps = broker.composite_count();
  const std::size_t base_leaves = broker.composite_leaf_count();

  BrokerServer server(broker);
  server.start();

  {
    RemoteBrokerClient client("127.0.0.1", server.port());
    client.subscribe("temperature >= 35", [](const Notification&) {});
    client.subscribe("humidity <= 5", [](const Notification&) {});
    // Two composites sharing the {temperature >= 35} leaf: the dedup layer
    // must count three distinct leaves, not four.
    client.subscribe_composite(
        "seq({temperature >= 35}, {humidity >= 90}, w=5)",
        [](const CompositeFiring&) {});
    client.subscribe_composite(
        "conj({temperature >= 35}, {radiation >= 50}, w=5)",
        [](const CompositeFiring&) {});
    client.flush();  // all four subscribe frames processed

    EXPECT_EQ(broker.subscription_count(), base_subs + 2);
    EXPECT_EQ(broker.composite_count(), base_comps + 2);
    EXPECT_EQ(broker.composite_leaf_count(), base_leaves + 3);

    // Keep deliveries in flight while the client goes away.
    broker.publish("temperature = 45; humidity = 2; radiation = 60", 1);
    client.close();  // socket close only — no unsubscribe frames sent
  }

  ASSERT_TRUE(eventually([&] { return server.active_connections() == 0; }));
  EXPECT_EQ(broker.subscription_count(), base_subs);
  EXPECT_EQ(broker.composite_count(), base_comps);
  EXPECT_EQ(broker.composite_leaf_count(), base_leaves);
  // A double-retraction would have thrown kNotFound inside cleanup and been
  // recorded; clean lifecycle leaves no error behind.
  EXPECT_EQ(server.first_error(), "");

  server.stop();
}

// Same retraction contract for an *abrupt* disconnect: the raw socket dies
// without any goodbye while subscribe state is live.
TEST(BrokerServerSocket, AbruptDisconnectRetractsAsWell) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  BrokerServer server(broker);
  server.start();

  {
    SocketChannel raw = SocketChannel::connect_to("127.0.0.1", server.port());
    std::optional<std::vector<std::uint8_t>> handshake = raw.read_frame();
    ASSERT_TRUE(handshake.has_value());

    raw.write_frame(
        wire::frame_subscribe(1, parse_profile(schema, "temperature >= 35")));
    raw.write_frame(wire::frame_composite_subscribe(
        2, *parse_composite(schema,
                            "seq({temperature >= 35}, {humidity >= 90}, w=5)")));
    ASSERT_TRUE(eventually([&] { return broker.subscription_count() == 1; }));
    ASSERT_TRUE(eventually([&] { return broker.composite_count() == 1; }));
    // `raw` goes out of scope: the descriptor closes with state installed.
  }

  ASSERT_TRUE(eventually([&] { return server.active_connections() == 0; }));
  EXPECT_EQ(broker.subscription_count(), 0u);
  EXPECT_EQ(broker.composite_count(), 0u);
  EXPECT_EQ(broker.composite_leaf_count(), 0u);
  EXPECT_EQ(server.first_error(), "");

  server.stop();
}

TEST(BrokerServerSocket, CorruptClientIsRecordedAndServerStaysUp) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  BrokerServer server(broker);
  server.start();

  {
    SocketChannel raw = SocketChannel::connect_to("127.0.0.1", server.port());
    ASSERT_TRUE(raw.read_frame().has_value());  // handshake
    const std::vector<std::uint8_t> garbage(32, 0xAB);
    raw.write_bytes(garbage);
    // Server must notice the corrupt stream and drop us.
    ASSERT_TRUE(eventually([&] { return server.active_connections() == 0; }));
  }
  EXPECT_NE(server.first_error(), "");

  // ...but the listener survives: a fresh, well-behaved client still works.
  RemoteBrokerClient client("127.0.0.1", server.port());
  client.subscribe("temperature >= 35", [](const Notification&) {});
  client.publish("temperature = 40; humidity = 50; radiation = 1", 1);
  client.flush();
  EXPECT_EQ(client.deliveries(), 1u);
  client.close();

  server.stop();
}

TEST(BrokerServerSocket, ReusingALiveKeyIsAProtocolError) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  BrokerServer server(broker);
  server.start();

  SocketChannel raw = SocketChannel::connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(raw.read_frame().has_value());
  raw.write_frame(
      wire::frame_subscribe(1, parse_profile(schema, "temperature >= 35")));
  raw.write_frame(
      wire::frame_subscribe(1, parse_profile(schema, "humidity <= 5")));

  // The server closes the connection and records the protocol error; the
  // lone valid subscription is still retracted by the cleanup path.
  ASSERT_TRUE(eventually([&] { return server.active_connections() == 0; }));
  EXPECT_NE(server.first_error(), "");
  EXPECT_EQ(broker.subscription_count(), 0u);

  server.stop();
}

// ---------------------------------------------------------------------------
// Mesh mode: socket clients participate in distributed routing, and their
// disconnect retracts the routing entries their profiles installed.

TEST(BrokerServerSocket, MeshDisconnectRetractsRoutingEntries) {
  const SchemaPtr schema = testutil::example1_schema();
  mesh::MeshNetwork net(schema);
  const net::NodeId n0 = net.add_node();
  const net::NodeId n1 = net.add_node();
  net.connect(n0, n1);
  net.start();

  BrokerServer server(net, n1);
  server.start();

  net.wait_idle();
  const std::size_t base_routes = net.routing_entries(n0);
  const std::size_t base_local = net.local_subscriptions(n1);

  {
    RemoteBrokerClient client("127.0.0.1", server.port());
    client.subscribe("temperature >= 35", [](const Notification&) {});
    client.subscribe("humidity >= 90", [](const Notification&) {});
    client.flush();  // mesh wait_idle: profile propagation has settled

    EXPECT_EQ(net.local_subscriptions(n1), base_local + 2);
    EXPECT_GT(net.routing_entries(n0), base_routes);

    // The subscription routes: a publish at the far node reaches the client.
    std::mutex mutex;
    std::vector<std::string> seen;
    client.subscribe("radiation >= 80", [&](const Notification& n) {
      const std::scoped_lock lock(mutex);
      seen.push_back(n.event.to_string());
    });
    client.flush();
    net.publish(n0, parse_event(
                        schema,
                        "temperature = 0; humidity = 0; radiation = 90", 1));
    net.wait_idle();
    client.flush();
    {
      const std::scoped_lock lock(mutex);
      EXPECT_EQ(seen.size(), 1u);
    }
    client.close();
  }

  // Disconnect cleanup unsubscribes through the mesh; the remote routing
  // entries those profiles installed must be gone once it settles.
  ASSERT_TRUE(eventually([&] { return server.active_connections() == 0; }));
  ASSERT_TRUE(eventually([&] {
    net.wait_idle();
    return net.routing_entries(n0) == base_routes &&
           net.local_subscriptions(n1) == base_local;
  }));
  EXPECT_EQ(server.first_error(), "");

  server.stop();
  net.shutdown();
  EXPECT_EQ(net.first_error(), "");
}

// ---------------------------------------------------------------------------
// The multi-process loopback oracle.
//
// A child process (forked before this test spawns any threads) runs a
// three-node line mesh with BrokerServers on both end nodes and reports
// their ports over a pipe. The parent drives a publisher client against
// node 0 and a subscriber client against node 2, then replays the identical
// workload on an in-process mesh and compares the delivery and
// composite-firing multisets. Any framing, ordering, or lifecycle bug in
// the socket path shows up as a multiset mismatch.

struct Workload {
  std::vector<std::string> profiles = {
      "temperature >= 35 && humidity >= 90",
      "temperature >= 30 && humidity >= 80",
      "radiation in [40, 100] && humidity <= 5",
  };
  std::string composite = "seq({temperature >= 40}, {humidity >= 95}, w=10)";
  std::vector<std::string> events = {
      "temperature = 40; humidity = 95; radiation = 10",
      "temperature = 36; humidity = 91; radiation = 45",
      "temperature = 31; humidity = 85; radiation = 50",
      "temperature = -25; humidity = 2; radiation = 60",
      "temperature = 45; humidity = 96; radiation = 41",
      "temperature = 10; humidity = 50; radiation = 5",
      "temperature = 41; humidity = 3; radiation = 99",
      "temperature = 0; humidity = 97; radiation = 44",
      "temperature = 39; humidity = 89; radiation = 40",
      "temperature = 50; humidity = 100; radiation = 100",
  };
};

/// Sorted (profile-index, event-string) pairs + sorted firing times —
/// the comparable fingerprint of one workload run.
struct RunResult {
  std::vector<std::pair<std::size_t, std::string>> deliveries;
  std::vector<Timestamp> firings;

  void normalize() {
    std::sort(deliveries.begin(), deliveries.end());
    std::sort(firings.begin(), firings.end());
  }
};

/// The oracle: the same workload through a plain in-process mesh.
RunResult run_in_process(const Workload& workload) {
  const SchemaPtr schema = testutil::example1_schema();
  mesh::MeshNetwork net(schema);
  for (int n = 0; n < 3; ++n) net.add_node();
  net.connect(0, 1);
  net.connect(1, 2);
  net.start();

  RunResult result;
  std::mutex mutex;
  std::map<SubscriptionId, std::size_t> index_of;
  for (std::size_t p = 0; p < workload.profiles.size(); ++p) {
    const SubscriptionId id = net.subscribe(
        2, workload.profiles[p],
        [&result, &mutex, &index_of](net::NodeId, SubscriptionId sub,
                                     const Event& event) {
          const std::scoped_lock lock(mutex);
          result.deliveries.emplace_back(index_of.at(sub), event.to_string());
        });
    index_of.emplace(id, p);
  }
  net.subscribe_composite(
      2, workload.composite,
      [&result, &mutex](net::NodeId, SubscriptionId, Timestamp time) {
        const std::scoped_lock lock(mutex);
        result.firings.push_back(time);
      });
  net.wait_idle();

  for (std::size_t i = 0; i < workload.events.size(); ++i) {
    net.publish(0, parse_event(schema, workload.events[i],
                               static_cast<Timestamp>(i + 1)));
  }
  net.wait_idle();
  net.flush_composites();
  net.shutdown();
  EXPECT_EQ(net.first_error(), "");

  result.normalize();
  return result;
}

/// The child: serve nodes 0 and 2 of the same mesh shape over TCP, write
/// both ports to `port_pipe`, then hold until `hold_pipe` reaches EOF.
/// Communicates failure via a nonzero exit status (gtest's asserts do not
/// cross the fork).
[[noreturn]] void run_oracle_server_child(int port_pipe, int hold_pipe) {
  int status = 0;
  try {
    const SchemaPtr schema = testutil::example1_schema();
    mesh::MeshNetwork net(schema);
    for (int n = 0; n < 3; ++n) net.add_node();
    net.connect(0, 1);
    net.connect(1, 2);
    net.start();

    BrokerServer publish_side(net, 0);
    BrokerServer subscribe_side(net, 2);
    publish_side.start();
    subscribe_side.start();

    const std::uint16_t ports[2] = {publish_side.port(),
                                    subscribe_side.port()};
    if (::write(port_pipe, ports, sizeof(ports)) != sizeof(ports)) _exit(3);
    ::close(port_pipe);

    char byte = 0;
    while (::read(hold_pipe, &byte, 1) > 0) {  // parent never writes
    }
    ::close(hold_pipe);

    publish_side.stop();
    subscribe_side.stop();
    if (!publish_side.first_error().empty()) status = 4;
    if (!subscribe_side.first_error().empty()) status = 5;
    net.shutdown();
    if (!net.first_error().empty()) status = 6;
  } catch (...) {
    status = 7;
  }
  _exit(status);
}

TEST(BrokerServerSocket, MultiProcessOracleMatchesInProcessMesh) {
  const Workload workload;

  int port_pipe[2];
  int hold_pipe[2];
  ASSERT_EQ(::pipe(port_pipe), 0);
  ASSERT_EQ(::pipe(hold_pipe), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(port_pipe[0]);
    ::close(hold_pipe[1]);
    run_oracle_server_child(port_pipe[1], hold_pipe[0]);
  }
  ::close(port_pipe[1]);
  ::close(hold_pipe[0]);

  std::uint16_t ports[2] = {0, 0};
  ASSERT_EQ(::read(port_pipe[0], ports, sizeof(ports)),
            static_cast<ssize_t>(sizeof(ports)));
  ::close(port_pipe[0]);

  RunResult remote;
  {
    RemoteBrokerClient publisher("127.0.0.1", ports[0]);
    RemoteBrokerClient subscriber("127.0.0.1", ports[1]);

    std::mutex mutex;
    std::map<SubscriptionId, std::size_t> index_of;
    for (std::size_t p = 0; p < workload.profiles.size(); ++p) {
      const SubscriptionId key = subscriber.subscribe(
          workload.profiles[p],
          [&remote, &mutex, &index_of](const Notification& n) {
            const std::scoped_lock lock(mutex);
            remote.deliveries.emplace_back(index_of.at(n.subscription),
                                           n.event.to_string());
          });
      index_of.emplace(key, p);
    }
    subscriber.subscribe_composite(
        workload.composite, [&remote, &mutex](const CompositeFiring& f) {
          const std::scoped_lock lock(mutex);
          remote.firings.push_back(f.time);
        });
    subscriber.flush();  // subscriptions propagated through the mesh

    for (std::size_t i = 0; i < workload.events.size(); ++i) {
      publisher.publish(workload.events[i], static_cast<Timestamp>(i + 1));
    }
    // Publisher flush: the mesh has fully processed (and routed) every
    // event, and buffered composite instants are drained. Subscriber flush:
    // every delivery frame written before it has been dispatched locally.
    publisher.flush();
    subscriber.flush();

    publisher.close();
    subscriber.close();
  }
  remote.normalize();

  // Release the child and insist on a clean exit before comparing.
  ::close(hold_pipe[1]);
  int status = -1;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  const RunResult expected = run_in_process(workload);
  ASSERT_FALSE(expected.deliveries.empty());  // the workload is not vacuous
  ASSERT_FALSE(expected.firings.empty());
  EXPECT_EQ(remote.deliveries, expected.deliveries);
  EXPECT_EQ(remote.firings, expected.firings);
}

}  // namespace
}  // namespace genas
