// Multithreaded mesh stress (the distributed counterpart of
// test_broker_stress): concurrent publishers on different nodes race
// subscribe/unsubscribe churn across the mesh, asserting that no delivery
// is lost or duplicated for stable subscriptions, that shutdown is a hard
// delivery barrier, and that the workers stay healthy. Run under
// -fsanitize=thread in CI (the GENAS_SANITIZE=thread configuration) to
// verify data-race freedom of the mailbox/outbox/routing machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "mesh/mesh.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

using mesh::MeshNetwork;
using mesh::MeshOptions;
using net::NodeId;
using net::RoutingMode;

constexpr int kPublishers = 4;
constexpr int kEventsPerPublisher = 300;

TEST(MeshStress, NoLostOrDuplicatedDeliveriesUnderChurn) {
  const SchemaPtr schema = testutil::example1_schema();

  MeshOptions options;
  options.mode = RoutingMode::kRoutingCovered;
  options.mailbox_capacity = 64;  // small: exercise backpressure + outboxes
  MeshNetwork mesh(schema, options);
  // 0 - 1 - 2 - 3 line; one publisher pinned to each node.
  for (int i = 0; i < kPublishers; ++i) mesh.add_node();
  mesh.connect(0, 1);
  mesh.connect(1, 2);
  mesh.connect(2, 3);
  mesh.start();

  // Stable subscription at the far end, matching every event: exactly one
  // delivery per published event, wherever it entered the mesh. Per-event
  // flags catch duplicates; the total catches losses.
  std::atomic<bool> shut_down{false};
  std::atomic<std::uint64_t> stable_deliveries{0};
  std::atomic<std::uint64_t> post_shutdown_deliveries{0};
  std::vector<std::atomic<int>> seen(
      static_cast<std::size_t>(kPublishers) * kEventsPerPublisher);
  mesh.subscribe(3, "temperature >= -30",
                 [&](NodeId, SubscriptionId, const Event& event) {
                   if (shut_down.load(std::memory_order_relaxed)) {
                     post_shutdown_deliveries.fetch_add(1);
                   }
                   stable_deliveries.fetch_add(1, std::memory_order_relaxed);
                   seen[static_cast<std::size_t>(event.time())].fetch_add(
                       1, std::memory_order_relaxed);
                 });
  mesh.wait_idle();

  // Publishers on distinct nodes; ingress backpressure throttles them.
  std::barrier start(kPublishers + 1);
  std::vector<std::thread> publishers;
  publishers.reserve(kPublishers);
  for (int t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kEventsPerPublisher; ++i) {
        const Timestamp id =
            static_cast<Timestamp>(t) * kEventsPerPublisher + i;
        Event event = Event::from_pairs(
            schema,
            {{"temperature", (i * 7) % 81 - 30},
             {"humidity", (t * 31 + i) % 101},
             {"radiation", 1 + (i % 100)}},
            id);
        mesh.publish(static_cast<NodeId>(t), std::move(event));
      }
    });
  }

  // Churn thread: subscribe/unsubscribe at node 1 while events stream. The
  // churned profile is covered by the stable one, so every install races
  // the covering suppression/promotion machinery across link tables.
  std::atomic<std::uint64_t> churn_deliveries{0};
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    start.arrive_and_wait();
    while (!stop.load(std::memory_order_relaxed)) {
      const SubscriptionId key = mesh.subscribe(
          1, "humidity >= 50", [&](NodeId, SubscriptionId, const Event&) {
            churn_deliveries.fetch_add(1, std::memory_order_relaxed);
          });
      mesh.unsubscribe(key);
    }
  });

  for (std::thread& publisher : publishers) publisher.join();
  stop.store(true, std::memory_order_relaxed);
  churn.join();
  mesh.wait_idle();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kPublishers) * kEventsPerPublisher;
  EXPECT_EQ(stable_deliveries.load(), kTotal);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "event " << i << " lost or duplicated";
  }
  EXPECT_EQ(mesh.stats().events_published, kTotal);
  EXPECT_EQ(mesh.first_error(), "");

  // Shutdown is a delivery barrier: no callback may run after it returns,
  // and rejected work must throw rather than vanish.
  mesh.shutdown();
  shut_down.store(true);
  try {
    mesh.publish(0, Event::from_pairs(schema, {{"temperature", 0},
                                               {"humidity", 0},
                                               {"radiation", 1}}));
    FAIL() << "publish after shutdown must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kState);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(post_shutdown_deliveries.load(), 0u);
}

TEST(MeshStress, ConcurrentShutdownAndPublishersRaceSafely) {
  // Publishers keep publishing while another thread shuts the mesh down:
  // every publish must either be fully delivered or rejected with
  // Error{kState} — never accepted-and-dropped.
  const SchemaPtr schema = testutil::example1_schema();
  MeshOptions options;
  options.mode = RoutingMode::kRouting;
  options.mailbox_capacity = 32;
  MeshNetwork mesh(schema, options);
  const NodeId left = mesh.add_node();
  const NodeId right = mesh.add_node();
  mesh.connect(left, right);
  mesh.start();

  std::atomic<std::uint64_t> delivered{0};
  mesh.subscribe(right, "temperature >= -30",
                 [&](NodeId, SubscriptionId, const Event&) {
                   delivered.fetch_add(1, std::memory_order_relaxed);
                 });
  mesh.wait_idle();

  std::atomic<std::uint64_t> accepted{0};
  constexpr int kThreads = 3;
  std::barrier start(kThreads + 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < 500; ++i) {
        try {
          mesh.publish(left, Event::from_pairs(
                                 schema, {{"temperature", (t + i) % 50},
                                          {"humidity", 0},
                                          {"radiation", 1}}));
          accepted.fetch_add(1, std::memory_order_relaxed);
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrorCode::kState);
          break;  // the mesh is gone; later publishes fail the same way
        }
      }
    });
  }
  start.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  mesh.shutdown();
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(delivered.load(), accepted.load());
  EXPECT_EQ(mesh.first_error(), "");
}

}  // namespace
}  // namespace genas
