// Tests for EventSampler and the history estimators.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dist/estimator.hpp"
#include "dist/sampler.hpp"
#include "dist/shapes.hpp"

namespace genas {
namespace {

SchemaPtr small_schema() {
  return SchemaBuilder()
      .add_integer("x", 0, 9)
      .add_integer("y", 0, 4)
      .build();
}

TEST(Sampler, EmpiricalFrequenciesApproachPmf) {
  const SchemaPtr schema = small_schema();
  const auto joint = JointDistribution::independent(
      schema, {shapes::falling(10), shapes::percent_peak(5, 0.9, true, 0.2)});
  EventSampler sampler(joint, 42);

  std::vector<double> x_counts(10, 0.0);
  std::vector<double> y_counts(5, 0.0);
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    const Event e = sampler.sample();
    x_counts[static_cast<std::size_t>(e.index(0))] += 1.0;
    y_counts[static_cast<std::size_t>(e.index(1))] += 1.0;
  }
  for (DomainIndex v = 0; v < 10; ++v) {
    EXPECT_NEAR(x_counts[static_cast<std::size_t>(v)] / kSamples,
                joint.marginal(0).pmf(v), 0.01);
  }
  EXPECT_NEAR(y_counts[4] / kSamples, joint.marginal(1).pmf(4), 0.01);
}

TEST(Sampler, TimestampsAreMonotonic) {
  const SchemaPtr schema = small_schema();
  EventSampler sampler(
      JointDistribution::independent(schema,
                                     {shapes::equal(10), shapes::equal(5)}),
      1);
  Timestamp last = 0;
  for (int i = 0; i < 10; ++i) {
    const Event e = sampler.sample();
    EXPECT_GT(e.time(), last);
    last = e.time();
  }
}

TEST(Sampler, MixtureComponentsBothAppear) {
  const SchemaPtr schema = small_schema();
  const auto joint = JointDistribution::mixture(
      schema,
      {{shapes::percent_peak(10, 1.0, false, 0.1), shapes::equal(5)},
       {shapes::percent_peak(10, 1.0, true, 0.1), shapes::equal(5)}},
      {0.3, 0.7});
  EventSampler sampler(joint, 7);
  int low = 0;
  int high = 0;
  for (int i = 0; i < 5000; ++i) {
    const Event e = sampler.sample();
    if (e.index(0) == 0) ++low;
    if (e.index(0) == 9) ++high;
  }
  EXPECT_NEAR(static_cast<double>(low) / 5000.0, 0.3, 0.03);
  EXPECT_NEAR(static_cast<double>(high) / 5000.0, 0.7, 0.03);
}

TEST(HistogramEstimator, ConvergesToEmpiricalDistribution) {
  HistogramEstimator h(4);
  for (int i = 0; i < 30; ++i) h.observe(1);
  for (int i = 0; i < 10; ++i) h.observe(3);
  EXPECT_EQ(h.observations(), 40u);
  const auto est = h.estimate(0.0);
  EXPECT_DOUBLE_EQ(est.pmf(1), 0.75);
  EXPECT_DOUBLE_EQ(est.pmf(3), 0.25);
  EXPECT_DOUBLE_EQ(est.pmf(0), 0.0);
}

TEST(HistogramEstimator, SmoothingAvoidsZeroMass) {
  HistogramEstimator h(4);
  h.observe(0);
  const auto est = h.estimate(0.5);
  for (DomainIndex v = 0; v < 4; ++v) EXPECT_GT(est.pmf(v), 0.0);
}

TEST(HistogramEstimator, DecayForgetsOldRegime) {
  HistogramEstimator h(2, 0.9);
  for (int i = 0; i < 200; ++i) h.observe(0);
  for (int i = 0; i < 60; ++i) h.observe(1);
  // With decay 0.9 the effective window is ~10 observations: the old
  // regime at value 0 must have faded almost completely.
  EXPECT_GT(h.estimate(0.0).pmf(1), 0.95);
}

TEST(HistogramEstimator, Validation) {
  EXPECT_THROW(HistogramEstimator(0), Error);
  EXPECT_THROW(HistogramEstimator(4, 0.0), Error);
  EXPECT_THROW(HistogramEstimator(4, 1.5), Error);
  HistogramEstimator h(4);
  EXPECT_THROW(h.observe(4), Error);
  EXPECT_THROW(h.observe(-1), Error);
  EXPECT_THROW(h.estimate(0.0), Error);  // no observations, no smoothing
  EXPECT_THROW(h.estimate(-1.0), Error);
  h.observe(2);
  h.reset();
  EXPECT_EQ(h.observations(), 0u);
  EXPECT_THROW(h.estimate(0.0), Error);
}

TEST(SchemaEstimator, TracksAllAttributesAndBuildsJoint) {
  const SchemaPtr schema = small_schema();
  SchemaEstimator estimator(schema);
  EventSampler sampler(
      JointDistribution::independent(
          schema, {shapes::percent_peak(10, 0.95, true, 0.1),
                   shapes::falling(5)}),
      3);
  for (int i = 0; i < 4000; ++i) estimator.observe(sampler.sample());
  EXPECT_EQ(estimator.observations(), 4000u);

  const auto joint = estimator.estimate_joint(0.5);
  EXPECT_GT(joint.marginal(0).mass(Interval{9, 9}), 0.6);
  EXPECT_GT(joint.marginal(1).pmf(0), joint.marginal(1).pmf(4));
}

TEST(SchemaEstimator, RejectsForeignEvents) {
  const SchemaPtr schema = small_schema();
  const SchemaPtr other = small_schema();
  SchemaEstimator estimator(schema);
  EXPECT_THROW(estimator.observe(Event::from_indices(other, {0, 0})), Error);
}

}  // namespace
}  // namespace genas
