// Hostile-scenario suite: deterministic fault drills against the exactness
// oracle. Every scenario runs the canonical sim::run_hostile_mesh workload
// twice — once pristine, once under a seeded FaultPlan (drops, duplicates,
// delays, mid-stream churn, link flap) — and asserts the delivery and
// composite-firing multisets are identical: with at-least-once links and
// receiver-side dedup, injected faults must be invisible to subscribers.
//
// The crash-restart drills run a BrokerServer over a journaled broker,
// kill it mid-stream, restart from the journal, and let a reconnect-mode
// client resume: deliveries and firings must match an uninterrupted run
// (modulo explicit, counted at-least-once duplicates on plain deliveries).
//
// Seed control: every scenario derives from GENAS_CHAOS_SEED when set
// (export GENAS_CHAOS_SEED=n to reproduce a CI failure); the seed is
// echoed into every failure message via a ScopedTrace.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ens/broker.hpp"
#include "ens/composite.hpp"
#include "ens/journal.hpp"
#include "net/broker_server.hpp"
#include "net/fault.hpp"
#include "net/remote_client.hpp"
#include "profile/parser.hpp"
#include "sim/hostile.hpp"

namespace genas {
namespace {

using net::FaultPlan;
using net::kAnyLink;
using sim::HostileMeshConfig;
using sim::HostileMeshRun;
using namespace std::chrono_literals;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("GENAS_CHAOS_SEED")) {
    const std::uint64_t seed = std::strtoull(env, nullptr, 10);
    if (seed != 0) return seed;
  }
  return 20260808;
}

/// Echoes the seed into every assertion failure in the test body.
class Hostile : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = chaos_seed();
    trace_.emplace(__FILE__, __LINE__,
                   "GENAS_CHAOS_SEED=" + std::to_string(seed_));
  }

  HostileMeshConfig config() const {
    HostileMeshConfig c;
    c.seed = seed_;
    return c;
  }

  static void expect_same(const HostileMeshRun& pristine,
                          const HostileMeshRun& hostile) {
    EXPECT_TRUE(pristine.first_error.empty()) << pristine.first_error;
    EXPECT_TRUE(hostile.first_error.empty()) << hostile.first_error;
    EXPECT_EQ(pristine.deliveries, hostile.deliveries);
    EXPECT_EQ(pristine.firings, hostile.firings);
  }

  std::uint64_t seed_ = 0;
  std::optional<::testing::ScopedTrace> trace_;
};

// ---------------------------------------------------------------------------
// Mesh drills: injected link faults must be invisible through reliable links.

TEST_F(Hostile, PristineRunIsDeterministic) {
  const HostileMeshRun first = sim::run_hostile_mesh(config());
  const HostileMeshRun second = sim::run_hostile_mesh(config());
  ASSERT_FALSE(first.deliveries.empty());
  ASSERT_FALSE(first.firings.empty());
  expect_same(first, second);
  EXPECT_EQ(first.faults.dropped, 0u);
}

TEST_F(Hostile, DroppedFramesAreInvisible) {
  const HostileMeshRun pristine = sim::run_hostile_mesh(config());

  HostileMeshConfig hostile = config();
  hostile.fault_plan = std::make_shared<FaultPlan>(seed_);
  hostile.fault_plan->drop_nth(0, 1, 2);
  hostile.fault_plan->drop_nth(1, 2, 5);
  hostile.fault_plan->drop_chance(kAnyLink, kAnyLink, 0.10, 50);
  const HostileMeshRun run = sim::run_hostile_mesh(hostile);

  EXPECT_GT(run.faults.dropped, 0u);
  expect_same(pristine, run);
}

TEST_F(Hostile, DuplicatedFramesAreInvisible) {
  const HostileMeshRun pristine = sim::run_hostile_mesh(config());

  HostileMeshConfig hostile = config();
  hostile.fault_plan = std::make_shared<FaultPlan>(seed_);
  hostile.fault_plan->duplicate_nth(0, 1, 1);
  hostile.fault_plan->duplicate_chance(kAnyLink, kAnyLink, 0.15, 60);
  const HostileMeshRun run = sim::run_hostile_mesh(hostile);

  EXPECT_GT(run.faults.duplicated, 0u);
  expect_same(pristine, run);
}

TEST_F(Hostile, DelayedFramesAreInvisible) {
  const HostileMeshRun pristine = sim::run_hostile_mesh(config());

  HostileMeshConfig hostile = config();
  hostile.fault_plan = std::make_shared<FaultPlan>(seed_);
  hostile.fault_plan->delay_nth(2, 3, 3);
  hostile.fault_plan->delay_chance(kAnyLink, kAnyLink, 0.15, 60);
  const HostileMeshRun run = sim::run_hostile_mesh(hostile);

  EXPECT_GT(run.faults.delayed, 0u);
  expect_same(pristine, run);
}

TEST_F(Hostile, MixedFaultStormIsInvisible) {
  const HostileMeshRun pristine = sim::run_hostile_mesh(config());

  HostileMeshConfig hostile = config();
  hostile.fault_plan = std::make_shared<FaultPlan>(seed_);
  hostile.fault_plan->drop_chance(kAnyLink, kAnyLink, 0.10, 40);
  hostile.fault_plan->duplicate_chance(kAnyLink, kAnyLink, 0.10, 40);
  hostile.fault_plan->delay_chance(kAnyLink, kAnyLink, 0.10, 40);
  const HostileMeshRun run = sim::run_hostile_mesh(hostile);

  EXPECT_GT(run.faults.dropped + run.faults.duplicated + run.faults.delayed,
            0u);
  expect_same(pristine, run);
}

TEST_F(Hostile, LinkFlapDuringCompositeWindows) {
  // Hammer the middle chain link in both directions: composite leaves and
  // their stimuli cross it constantly, so drops land inside open windows.
  const HostileMeshRun pristine = sim::run_hostile_mesh(config());

  HostileMeshConfig hostile = config();
  hostile.fault_plan = std::make_shared<FaultPlan>(seed_);
  hostile.fault_plan->drop_chance(1, 2, 0.5, 80);
  hostile.fault_plan->drop_chance(2, 1, 0.5, 80);
  const HostileMeshRun run = sim::run_hostile_mesh(hostile);

  EXPECT_GT(run.faults.dropped, 0u);
  expect_same(pristine, run);
}

TEST_F(Hostile, ChurnStormUnderFaults) {
  // Mid-stream subscription churn while every link misbehaves: subscribe /
  // unsubscribe propagation and covering promotion must also survive
  // drops, duplicates, and reordering.
  HostileMeshConfig base = config();
  base.churn = true;
  const HostileMeshRun pristine = sim::run_hostile_mesh(base);

  HostileMeshConfig hostile = base;
  hostile.fault_plan = std::make_shared<FaultPlan>(seed_);
  hostile.fault_plan->drop_chance(kAnyLink, kAnyLink, 0.12, 50);
  hostile.fault_plan->duplicate_chance(kAnyLink, kAnyLink, 0.12, 40);
  hostile.fault_plan->delay_chance(kAnyLink, kAnyLink, 0.12, 40);
  const HostileMeshRun run = sim::run_hostile_mesh(hostile);

  EXPECT_GT(run.faults.dropped + run.faults.duplicated + run.faults.delayed,
            0u);
  expect_same(pristine, run);
}

// ---------------------------------------------------------------------------
// Crash-restart drills: BrokerServer + durable journal + reconnect client.

/// Thread-safe multiset recorder ("<tag>:e<id>" / "<tag>:t<time>" entries).
class Recorder {
 public:
  void record(const char* tag, char kind, std::uint64_t n) {
    std::string entry(tag);
    entry += ':';
    entry += kind;
    entry += std::to_string(n);
    const std::scoped_lock lock(mutex_);
    entries_.push_back(std::move(entry));
  }
  std::vector<std::string> sorted() {
    const std::scoped_lock lock(mutex_);
    std::vector<std::string> copy = entries_;
    std::sort(copy.begin(), copy.end());
    return copy;
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> entries_;
};

/// Observations plus fault-accounting counters of one drill.
struct DrillRun {
  std::vector<std::string> deliveries;
  std::vector<std::string> firings;
  std::uint64_t reconnects = 0;
  std::uint64_t replayed = 0;    ///< client publishes re-sent on reconnect
  std::uint64_t duplicates = 0;  ///< server-side sequenced-publish drops
};

/// Deterministic stream: an active pattern that keeps composite windows
/// busy, shaped around the injected disruption so the oracle stays exact.
///
/// `quiet_gap` (crash drill): events 28..47 match no profile and no
/// composite leaf (kind 40 is outside every predicate used below), so the
/// at-least-once replays after the restart are observationally inert.
///
/// `cut_zones` (link-cut drill): events within 8 of each chunk boundary
/// (20/40/60) are kind 55 — they match the plain "kind >= 50" subscription
/// (so replayed publishes still produce observable deliveries) but no
/// composite leaf. A cut retracts the client's composite subscription
/// server-side and the resubscribe starts a fresh detector, so a
/// client-registered composite window can never straddle a cut; the zones
/// keep the reference run from firing across boundaries the cut run
/// cannot. (Broker-local composites survive cuts — the mesh drills above
/// cover windows straddling link faults.)
int drill_kind(std::size_t i, bool quiet_gap, bool cut_zones) {
  if (quiet_gap && i >= 28 && i < 48) return 40;
  if (cut_zones) {
    for (std::size_t boundary = 20; boundary <= 60; boundary += 20) {
      if (i + 8 >= boundary && i < boundary + 8) return 55;
    }
  }
  static constexpr int kPattern[] = {65, 85, 5, 95, 55, 15};
  return kPattern[i % 6];
}

constexpr std::size_t kDrillEvents = 80;

/// One end-to-end drill: a journaled broker served over TCP, a
/// reconnect-mode client with plain + composite subscriptions, and a fixed
/// 80-event stream split around a mid-stream disruption. `crash` kills the
/// server AND broker after event 40 and restarts both from the journal on
/// the same port; `cuts` severs just the connections (broker survives) at
/// chunk boundaries. With neither, it is the uninterrupted reference run.
DrillRun run_drill(bool crash, std::size_t cuts, bool quiet_gap,
                   bool cut_zones, const std::string& journal_path) {
  const SchemaPtr schema = sim::hostile_schema();
  Recorder deliveries;
  Recorder firings;

  const auto record_delivery = [&deliveries](const char* tag) {
    return [&deliveries, tag](const Notification& n) {
      deliveries.record(tag, 'e',
                        static_cast<std::uint64_t>(n.event.value("id").as_int()));
    };
  };
  const auto record_firing = [&firings](const char* tag) {
    return [&firings, tag](const CompositeFiring& f) {
      firings.record(tag, 't', static_cast<std::uint64_t>(f.time));
    };
  };

  // Durable broker-side state: one plain and one composite local
  // subscription, journaled so the restarted broker can recover them.
  const Profile local_profile = parse_profile(schema, "kind >= 90");
  const CompositeExprPtr local_composite =
      parse_composite(schema, "conj({kind <= 10}, {kind >= 90}, w=6)");
  SubscriptionJournal journal;
  journal.open(journal_path);
  journal.record_schema(*schema);
  journal.record_subscribe(7, local_profile);
  journal.record_composite_subscribe(9, *local_composite);
  journal.sync();

  auto broker = std::make_unique<Broker>(schema);
  broker->set_composite_dedup_window(64);
  broker->subscribe(local_profile, record_delivery("ld"));
  broker->subscribe_composite(local_composite, record_firing("lc"));

  net::ServerOptions server_options;
  auto server = std::make_unique<net::BrokerServer>(*broker, server_options);
  server->start();
  const std::uint16_t port = server->port();

  net::ClientOptions client_options;
  client_options.reconnect = true;
  client_options.max_redials = 100;
  client_options.redial_backoff = 5ms;
  client_options.redial_backoff_cap = 50ms;
  client_options.publish_window = 12;
  net::RemoteBrokerClient client("127.0.0.1", port, client_options);

  client.subscribe("kind >= 50", record_delivery("p0"));
  client.subscribe("kind <= 20", record_delivery("p1"));
  client.subscribe_composite("seq({kind >= 60}, {kind <= 30}, w=8)",
                             record_firing("c0"));

  const auto publish_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      client.publish(Event::from_pairs(
          client.schema(),
          {{"kind", drill_kind(i, quiet_gap, cut_zones)},
           {"id", static_cast<std::int64_t>(i)}},
          static_cast<Timestamp>(i + 1)));
    }
  };

  // The reader notices a severed stream asynchronously; publishes issued
  // before it does go into the dead socket and live only in the client's
  // replay window. Never let more than the window accumulate unprocessed:
  // publish a bounded "blind" prefix after each cut, then wait for the
  // session to resume before continuing (at-least-once only covers what
  // the window retains).
  const auto wait_resumed = [&](std::uint64_t reconnect_count) {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline &&
           (client.reconnects() < reconnect_count || !client.connected())) {
      std::this_thread::sleep_for(2ms);
    }
  };

  if (cuts > 0) {
    // Link-flap drill: sever every connection at chunk boundaries; the
    // broker (and its composite windows, which straddle the cuts) survives.
    const std::size_t chunk = kDrillEvents / (cuts + 1);
    const std::size_t blind = client_options.publish_window / 2;
    for (std::size_t c = 0; c <= cuts; ++c) {
      const std::size_t begin = c * chunk;
      const std::size_t end = c == cuts ? kDrillEvents : begin + chunk;
      if (c > 0) {
        publish_range(begin, begin + blind);  // into the severed socket
        wait_resumed(c);
        publish_range(begin + blind, end);
      } else {
        publish_range(begin, end);
      }
      client.flush();
      if (c < cuts) server->disconnect_all();
    }
  } else {
    publish_range(0, kDrillEvents / 2);
    client.flush();
    if (crash) {
      // Kill the service: connections die, broker state (composite
      // detectors, subscription engine) is gone. Recover the control plane
      // from the journal and resume serving on the same port while the
      // client redials.
      server.reset();
      broker.reset();
      journal.close();

      SubscriptionJournal recovered;
      SubscriptionJournal::LoadStats stats;
      const SubscriptionJournal::State& state =
          recovered.open(journal_path, &stats);
      EXPECT_EQ(state.subscriptions.size(), 1u);
      EXPECT_EQ(state.composites.size(), 1u);
      EXPECT_EQ(stats.bytes_dropped, 0u);

      broker = std::make_unique<Broker>(state.schema);
      broker->set_composite_dedup_window(64);
      replay_journal(
          state, *broker,
          [&](std::uint64_t) { return record_delivery("ld"); },
          [&](std::uint64_t) { return record_firing("lc"); });

      server_options.port = port;  // the client is redialing this address
      server = std::make_unique<net::BrokerServer>(*broker, server_options);
      server->start();
      // Resume before phase 2 so its publishes flow over the live session
      // and only the quiet pre-crash window tail is ever replayed.
      wait_resumed(1);
    }
    publish_range(kDrillEvents / 2, kDrillEvents);
    client.flush();
  }

  DrillRun run;
  run.reconnects = client.reconnects();
  run.replayed = client.replayed_publishes();
  run.duplicates = server->duplicate_publishes();
  client.close();
  server.reset();
  run.deliveries = deliveries.sorted();
  run.firings = firings.sorted();
  return run;
}

/// Unique-per-process temp path (drills run with fresh journals).
std::string drill_journal_path(const char* name) {
  std::string path = ::testing::TempDir();
  if (path.empty() || path.back() != '/') path += '/';
  path += "genas_drill_";
  path += name;
  path += '_';
  path += std::to_string(::getpid());
  path += ".journal";
  std::remove(path.c_str());
  return path;
}

TEST_F(Hostile, CrashRestartMidStreamRecoversExactly) {
  // Flushed-before-crash variant: everything delivered before the kill,
  // replays land in the quiet gap — the multisets must match the
  // uninterrupted run exactly.
  const DrillRun reference =
      run_drill(false, 0, true, false, drill_journal_path("crash_ref"));
  const DrillRun crashed =
      run_drill(true, 0, true, false, drill_journal_path("crash"));

  ASSERT_FALSE(reference.deliveries.empty());
  ASSERT_FALSE(reference.firings.empty());
  EXPECT_EQ(reference.deliveries, crashed.deliveries);
  EXPECT_EQ(reference.firings, crashed.firings);
  EXPECT_EQ(crashed.reconnects, 1u);
  // The restarted server adopted the session fresh, so the whole retained
  // window replayed (at-least-once), and none of it was dropped as a
  // duplicate — but every replayed event was observationally inert.
  EXPECT_EQ(crashed.replayed, 12u);
  EXPECT_EQ(crashed.duplicates, 0u);
  EXPECT_EQ(reference.reconnects, 0u);
  EXPECT_EQ(reference.replayed, 0u);
}

TEST_F(Hostile, LinkCutsResumeExactlyOnce) {
  // The broker survives; only connections are severed (three times, with
  // composite windows straddling every cut). Session resume + the server's
  // publish watermark make recovery exactly-once: identical multisets, no
  // quiet gap required.
  const DrillRun reference =
      run_drill(false, 0, false, true, drill_journal_path("cut_ref"));
  const DrillRun cut =
      run_drill(false, 3, false, true, drill_journal_path("cut"));

  ASSERT_FALSE(reference.deliveries.empty());
  ASSERT_FALSE(reference.firings.empty());
  EXPECT_EQ(reference.deliveries, cut.deliveries);
  EXPECT_EQ(reference.firings, cut.firings);
  EXPECT_EQ(cut.reconnects, 3u);
}

}  // namespace
}  // namespace genas
