// Tests for the FilterEngine facade.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/filter_engine.hpp"
#include "dist/sampler.hpp"
#include "dist/shapes.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

class FilterEngineTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = testutil::example1_schema();

  Event make_event(std::int64_t t, std::int64_t h, std::int64_t r) {
    return Event::from_pairs(
        schema_, {{"temperature", t}, {"humidity", h}, {"radiation", r}});
  }
};

TEST_F(FilterEngineTest, SubscribeMatchUnsubscribe) {
  FilterEngine engine(schema_);
  const ProfileId hot = engine.subscribe("temperature >= 35");
  const ProfileId wet = engine.subscribe("humidity >= 90");

  EngineMatch match = engine.match(make_event(40, 95, 1));
  EXPECT_EQ(testutil::sorted(match.matched),
            (std::vector<ProfileId>{hot, wet}));
  EXPECT_GT(match.operations, 0u);

  engine.unsubscribe(hot);
  match = engine.match(make_event(40, 95, 1));
  EXPECT_EQ(match.matched, (std::vector<ProfileId>{wet}));
}

TEST_F(FilterEngineTest, LazyRebuildOnSubscriptionChange) {
  FilterEngine engine(schema_);
  engine.subscribe("temperature >= 35");
  (void)engine.tree();
  const std::uint64_t builds = engine.rebuild_count();
  // No change: tree() must not rebuild again.
  (void)engine.tree();
  EXPECT_EQ(engine.rebuild_count(), builds);
  // Subscription change invalidates.
  engine.subscribe("humidity >= 90");
  (void)engine.tree();
  EXPECT_EQ(engine.rebuild_count(), builds + 1);
}

TEST_F(FilterEngineTest, PolicyChangeTriggersRebuildWithNewShape) {
  EngineOptions options;
  options.prior = JointDistribution::independent(
      schema_, {shapes::equal(81), shapes::equal(101), shapes::equal(100)});
  FilterEngine engine(schema_, options);
  engine.subscribe("temperature >= 35 && humidity >= 90");
  engine.subscribe("humidity <= 5");

  (void)engine.tree();
  OrderingPolicy policy;
  policy.attribute_measure = AttributeMeasure::kA1;
  policy.direction = OrderDirection::kDescending;
  engine.set_policy(policy);
  const ProfileTree& tree = engine.tree();
  // Humidity has the larger zero-subdomain: it must now be the root.
  EXPECT_EQ(tree.nodes().back().attribute, schema_->id_of("humidity"));
}

TEST_F(FilterEngineTest, EffectiveDistributionFallsBackToUniformThenPrior) {
  FilterEngine plain(schema_);
  const JointDistribution uniform = plain.effective_distribution();
  EXPECT_NEAR(uniform.marginal(0).pmf(0), 1.0 / 81.0, 1e-12);

  EngineOptions options;
  options.prior = JointDistribution::independent(
      schema_, {shapes::percent_peak(81, 0.9, true, 0.1),
                shapes::equal(101), shapes::equal(100)});
  FilterEngine with_prior(schema_, options);
  EXPECT_GT(with_prior.effective_distribution().marginal(0).mass(
                Interval{73, 80}),
            0.8);
}

TEST_F(FilterEngineTest, AdaptiveLoopRebuildsOnDrift) {
  EngineOptions options;
  options.policy.value_order = ValueOrder::kEventProbability;
  AdaptiveOptions adaptive;
  adaptive.min_observations = 300;
  adaptive.rebuild_cooldown = 300;
  adaptive.drift_threshold = 0.4;
  adaptive.decay = 0.995;
  options.adaptive = adaptive;
  FilterEngine engine(schema_, options);
  engine.subscribe("temperature >= 35");
  engine.subscribe("temperature <= -20");

  const auto low_joint = JointDistribution::independent(
      schema_, {shapes::percent_peak(81, 0.95, false, 0.1),
                shapes::equal(101), shapes::equal(100)});
  const auto high_joint = JointDistribution::independent(
      schema_, {shapes::percent_peak(81, 0.95, true, 0.1),
                shapes::equal(101), shapes::equal(100)});

  std::uint64_t rebuilds_seen = 0;
  EventSampler low(low_joint, 1);
  for (int i = 0; i < 600; ++i) {
    if (engine.match(low.sample()).rebuilt) ++rebuilds_seen;
  }
  EXPECT_GE(rebuilds_seen, 1u);  // first adaptive optimization

  EventSampler high(high_joint, 2);
  std::uint64_t drift_rebuilds = 0;
  for (int i = 0; i < 2000; ++i) {
    if (engine.match(high.sample()).rebuilt) ++drift_rebuilds;
  }
  EXPECT_GE(drift_rebuilds, 1u) << "regime change must trigger a rebuild";
  ASSERT_NE(engine.adaptive(), nullptr);
  EXPECT_GE(engine.adaptive()->rebuilds(), 2u);
}

TEST_F(FilterEngineTest, SnapshotIsImmutableAcrossMutations) {
  FilterEngine engine(schema_);
  const ProfileId hot = engine.subscribe("temperature >= 35");
  const std::shared_ptr<const MatchSnapshot> snapshot = engine.snapshot();
  ASSERT_NE(snapshot, nullptr);
  ASSERT_NE(snapshot->tree, nullptr);
  ASSERT_NE(snapshot->flat, nullptr);
  EXPECT_EQ(snapshot->flat->source_version(),
            snapshot->tree->source_version());

  // Mutate and rebuild: the old snapshot must keep matching the old set.
  engine.subscribe("humidity >= 90");
  const std::shared_ptr<const MatchSnapshot> fresh = engine.snapshot();
  EXPECT_NE(fresh, snapshot);

  const Event wet = make_event(0, 95, 1);
  EXPECT_EQ(snapshot->flat->match(wet).matched_count, 0u);  // old: hot only
  ASSERT_EQ(fresh->flat->match(wet).matched_count, 1u);

  const Event both = make_event(40, 95, 1);
  const FlatMatch old_match = snapshot->flat->match(both);
  ASSERT_EQ(old_match.matched_count, 1u);
  EXPECT_EQ(old_match.matched[0], hot);
  EXPECT_EQ(fresh->flat->match(both).matched_count, 2u);
}

TEST_F(FilterEngineTest, MatchBatchAgreesWithSingleMatches) {
  FilterEngine engine(schema_);
  engine.subscribe("temperature >= 35");
  engine.subscribe("humidity >= 90");
  engine.subscribe("radiation >= 50");

  const std::vector<Event> events = {
      make_event(40, 95, 1),  make_event(0, 0, 99), make_event(-30, 0, 1),
      make_event(36, 91, 77), make_event(35, 90, 50)};

  std::vector<ProfileId> matched;
  std::vector<std::size_t> offsets;
  const EngineBatchMatch batch = engine.match_batch(events, matched, offsets);

  ASSERT_EQ(offsets.size(), events.size() + 1);
  std::uint64_t single_operations = 0;
  std::size_t single_matched_events = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const EngineMatch single = engine.match(events[i]);
    single_operations += single.operations;
    if (!single.matched.empty()) ++single_matched_events;
    const std::vector<ProfileId> slice(matched.begin() + offsets[i],
                                       matched.begin() + offsets[i + 1]);
    EXPECT_EQ(slice, single.matched) << "event " << i;
  }
  EXPECT_EQ(batch.operations, single_operations);
  EXPECT_EQ(batch.matched_events, single_matched_events);
  EXPECT_FALSE(batch.rebuilt);

  // Buffer reuse: a second batch clears and refills the same vectors.
  const std::size_t capacity = matched.capacity();
  engine.match_batch(events, matched, offsets);
  EXPECT_EQ(offsets.size(), events.size() + 1);
  EXPECT_GE(matched.capacity(), capacity);
}

TEST_F(FilterEngineTest, MatchBatchFeedsAdaptiveLoop) {
  EngineOptions options;
  AdaptiveOptions adaptive;
  adaptive.min_observations = 100;
  adaptive.rebuild_cooldown = 100;
  adaptive.drift_threshold = 0.4;
  adaptive.decay = 0.995;
  options.adaptive = adaptive;
  FilterEngine engine(schema_, options);
  engine.subscribe("temperature >= 35");

  const std::vector<Event> low =
      testutil::event_stream(testutil::peak_joint(schema_, false), 256, 3);
  std::vector<ProfileId> matched;
  std::vector<std::size_t> offsets;
  bool rebuilt = false;
  for (int round = 0; round < 4; ++round) {
    rebuilt |= engine.match_batch(low, matched, offsets).rebuilt;
  }
  EXPECT_TRUE(rebuilt);  // batch observations drive the first optimization
  ASSERT_NE(engine.adaptive(), nullptr);
  EXPECT_EQ(engine.adaptive()->observations(), 4u * 256u);
}

TEST_F(FilterEngineTest, Validation) {
  EXPECT_THROW(FilterEngine(nullptr), Error);
  FilterEngine engine(schema_);
  const SchemaPtr other = testutil::example1_schema();
  EXPECT_THROW(engine.match(Event::from_indices(other, {0, 0, 0})), Error);
  EXPECT_THROW(engine.unsubscribe(42), Error);

  EngineOptions bad;
  bad.prior = JointDistribution::independent(
      other, {shapes::equal(81), shapes::equal(101), shapes::equal(100)});
  EXPECT_THROW(FilterEngine(schema_, bad), Error);
}

}  // namespace
}  // namespace genas
