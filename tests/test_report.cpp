// Tests for the report-table formatter.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "sim/report.hpp"

namespace genas {
namespace {

TEST(Report, AlignedTable) {
  sim::Table table({"combo", "natural", "binary"});
  table.add_row("d37/equal", {12.5, 7.0});
  table.add_row({"d5/d41", "3", "4"});
  EXPECT_EQ(table.row_count(), 2u);

  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("combo"), std::string::npos);
  EXPECT_NE(out.find("d37/equal"), std::string::npos);
  EXPECT_NE(out.find("12.5"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Report, CsvOutput) {
  sim::Table table({"a", "b"});
  table.add_row({"x", "1"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1\n");
}

TEST(Report, RowWidthValidation) {
  sim::Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
  EXPECT_THROW(sim::Table({}), Error);
}

TEST(Report, FormatDoubleTrimsZeros) {
  sim::Table table({"label", "v"});
  table.add_row("r", {2.0});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "label,v\nr,2\n");
}

TEST(Report, Heading) {
  std::ostringstream os;
  sim::print_heading(os, "Fig. 4(a)");
  EXPECT_EQ(os.str(), "\n== Fig. 4(a) ==\n");
}

}  // namespace
}  // namespace genas
