// Build-sanity smoke suite: FilterEngine subscribe/match/rebuild on the
// Example-1 fixture, end to end, under three representative OrderingPolicy
// variants — the natural baseline, the paper's proposed distribution-aware
// ordering, and an adversarial worst-case ordering. Every variant must
// deliver identical matching semantics; only the operation counts may
// differ. If this suite fails, the toolchain or a core layer is broken and
// the finer-grained suites are not worth reading first.
#include <gtest/gtest.h>

#include "core/filter_engine.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

struct PolicyCase {
  const char* name;
  OrderingPolicy policy;
};

std::vector<PolicyCase> policy_cases() {
  OrderingPolicy natural;  // schema order, natural value order, linear scan

  OrderingPolicy proposed;  // the paper's recommendation
  proposed.value_order = ValueOrder::kEventProbability;
  proposed.strategy = SearchStrategy::kBinary;
  proposed.attribute_measure = AttributeMeasure::kA2;
  proposed.direction = OrderDirection::kDescending;

  OrderingPolicy adversarial;  // least selective attributes first
  adversarial.value_order = ValueOrder::kProfileProbability;
  adversarial.strategy = SearchStrategy::kInterpolation;
  adversarial.attribute_measure = AttributeMeasure::kA1;
  adversarial.direction = OrderDirection::kAscending;

  return {{"natural", natural},
          {"proposed", proposed},
          {"adversarial", adversarial}};
}

class BuildSanity : public ::testing::TestWithParam<std::size_t> {
 protected:
  const PolicyCase& variant() const { return cases_[GetParam()]; }

  std::vector<PolicyCase> cases_ = policy_cases();
};

/// Example 1's five profiles as parseable subscription expressions.
const char* const kExample1Expressions[] = {
    "temperature >= 35 && humidity >= 90",                          // P1
    "temperature >= 30 && humidity >= 90",                          // P2
    "temperature >= 30 && humidity >= 90 && radiation in [35,50]",  // P3
    "temperature in [-30,-20] && humidity <= 5 && radiation in [40,100]",  // P4
    "temperature >= 30 && humidity >= 80",                          // P5
};

TEST_P(BuildSanity, SubscribeMatchRebuildEndToEnd) {
  const SchemaPtr schema = testutil::example1_schema();
  EngineOptions options;
  options.policy = variant().policy;
  options.prior = testutil::peak_joint(schema, true);
  FilterEngine engine(schema, options);

  for (const char* expression : kExample1Expressions) {
    engine.subscribe(expression);
  }
  ASSERT_EQ(engine.profiles().active_count(), 5u);

  // The paper's Example 1 event: 40°C, 91% humidity, radiation 40 matches
  // P1, P2, P3, and P5 but not P4.
  const Event example = Event::from_pairs(
      schema, {{"temperature", 40}, {"humidity", 91}, {"radiation", 40}});
  EXPECT_EQ(testutil::sorted(engine.match(example).matched),
            (std::vector<ProfileId>{0, 1, 2, 4}))
      << variant().name;

  // Semantics must equal the naive per-profile truth on a skewed stream.
  const auto stream =
      testutil::event_stream(testutil::peak_joint(schema, true), 300, 7);
  const auto verify = [&](const char* phase) {
    for (const Event& event : stream) {
      std::vector<ProfileId> expected;
      for (const ProfileId id : engine.profiles().active_ids()) {
        if (engine.profiles().profile(id).matches(event)) {
          expected.push_back(id);
        }
      }
      ASSERT_EQ(testutil::sorted(engine.match(event).matched),
                testutil::sorted(expected))
          << variant().name << " / " << phase;
    }
  };
  verify("initial");

  // Explicit rebuild must preserve semantics...
  const std::uint64_t builds_before = engine.rebuild_count();
  engine.rebuild();
  EXPECT_GT(engine.rebuild_count(), builds_before);
  verify("after rebuild");

  // ...and so must subscription churn (lazy rebuild on the next match).
  engine.unsubscribe(1);
  engine.subscribe("radiation >= 99");
  EXPECT_EQ(engine.profiles().active_count(), 5u);
  verify("after churn");
}

INSTANTIATE_TEST_SUITE_P(AllOrderingPolicies, BuildSanity,
                         ::testing::Values<std::size_t>(0, 1, 2),
                         [](const auto& info) {
                           return policy_cases()[info.param].name;
                         });

}  // namespace
}  // namespace genas
