// Tests for the deterministic d1..d60 distribution catalog.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dist/catalog.hpp"

namespace genas {
namespace {

TEST(Catalog, HasSixtyNumberedEntries) {
  const DistributionCatalog catalog(100);
  for (int k = 1; k <= DistributionCatalog::kNumbered; ++k) {
    const auto d = catalog.numbered(k);
    EXPECT_EQ(d.size(), 100);
  }
  EXPECT_THROW(catalog.numbered(0), Error);
  EXPECT_THROW(catalog.numbered(61), Error);
}

TEST(Catalog, NumberedEntriesAreDeterministic) {
  const DistributionCatalog a(100);
  const DistributionCatalog b(100);
  for (int k : {1, 17, 37, 42, 60}) {
    EXPECT_DOUBLE_EQ(
        DiscreteDistribution::l1_distance(a.numbered(k), b.numbered(k)), 0.0)
        << "d" << k;
  }
}

TEST(Catalog, EntriesDifferFromEachOther) {
  const DistributionCatalog catalog(100);
  // Not a strict requirement for every pair, but the sampled pairs span
  // distinct seeds and must differ materially.
  EXPECT_GT(DiscreteDistribution::l1_distance(catalog.numbered(3),
                                              catalog.numbered(39)),
            0.05);
  EXPECT_GT(DiscreteDistribution::l1_distance(catalog.numbered(5),
                                              catalog.numbered(41)),
            0.05);
}

TEST(Catalog, ByNameResolvesNumberedAndNamedShapes) {
  const DistributionCatalog catalog(80);
  EXPECT_EQ(catalog.by_name("d17").size(), 80);
  EXPECT_DOUBLE_EQ(DiscreteDistribution::l1_distance(catalog.by_name("d17"),
                                                     catalog.numbered(17)),
                   0.0);
  EXPECT_NO_THROW(catalog.by_name("equal"));
  EXPECT_NO_THROW(catalog.by_name("uniform"));
  EXPECT_NO_THROW(catalog.by_name("gauss"));
  EXPECT_NO_THROW(catalog.by_name("gauss-low"));
  EXPECT_NO_THROW(catalog.by_name("gauss-high"));
  EXPECT_NO_THROW(catalog.by_name("falling"));
  EXPECT_NO_THROW(catalog.by_name("rising"));
  EXPECT_NO_THROW(catalog.by_name("95% high"));
  EXPECT_NO_THROW(catalog.by_name("90% low"));
  EXPECT_NO_THROW(catalog.by_name(" D5 "));  // trims and lower-cases
}

TEST(Catalog, ByNameFailures) {
  const DistributionCatalog catalog(80);
  EXPECT_THROW(catalog.by_name(""), Error);
  EXPECT_THROW(catalog.by_name("d0"), Error);
  EXPECT_THROW(catalog.by_name("d61"), Error);
  EXPECT_THROW(catalog.by_name("bogus"), Error);
  EXPECT_THROW(catalog.by_name("120% high"), Error);
  EXPECT_THROW(catalog.by_name("95% middle"), Error);
}

TEST(Catalog, NamesListResolves) {
  const DistributionCatalog catalog(64);
  const auto names = catalog.names();
  EXPECT_EQ(names.size(), 10u + DistributionCatalog::kNumbered);
  for (const auto& name : names) {
    EXPECT_NO_THROW(catalog.by_name(name)) << name;
  }
}

TEST(Catalog, SameEntryScalesAcrossDomainSizes) {
  // The shape is defined on the normalized domain: coarse and fine
  // discretizations of d7 must put similar mass on the same halves.
  const DistributionCatalog coarse(50);
  const DistributionCatalog fine(500);
  const auto a = coarse.numbered(7);
  const auto b = fine.numbered(7);
  EXPECT_NEAR(a.mass(Interval{0, 24}), b.mass(Interval{0, 249}), 0.05);
}

}  // namespace
}  // namespace genas
