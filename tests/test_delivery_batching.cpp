// Tests for batched delivery streaming (kDeliveryBatch): the BrokerServer
// stages per-notification writes and flushes one frame per publish drain,
// the RemoteBrokerClient dispatches batch frames per subscription, and
// delivery_batch_max = 1 reproduces the legacy one-frame-per-delivery
// traffic.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ens/broker.hpp"
#include "mesh/mesh.hpp"
#include "net/broker_server.hpp"
#include "net/remote_client.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

using net::BrokerServer;
using net::RemoteBrokerClient;
using net::ServerOptions;
using namespace std::chrono_literals;

bool eventually(const std::function<bool()>& condition) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return condition();
}

std::int64_t frames_written(const BrokerServer& server) {
  return server.stats_snapshot().value("genas_server_frames_written_total");
}

TEST(DeliveryBatching, OnePublishDrainYieldsOneFrame) {
  // Ten overlapping subscriptions match the same event: all ten deliveries
  // ride one kDeliveryBatch frame, flushed by the broker's drain hook at
  // the end of the publish — not ten kDelivery frames.
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  BrokerServer server(broker);
  server.start();

  RemoteBrokerClient client("127.0.0.1", server.port());
  std::mutex mutex;
  std::vector<SubscriptionId> seen;
  constexpr std::size_t kSubs = 10;
  for (std::size_t s = 0; s < kSubs; ++s) {
    client.subscribe("temperature >= " + std::to_string(10 + s),
                     [&](const Notification& n) {
                       const std::scoped_lock lock(mutex);
                       seen.push_back(n.subscription);
                     });
  }
  client.flush();  // all ten subscriptions are installed server-side

  const std::int64_t before = frames_written(server);
  broker.publish(Event::from_pairs(
      schema, {{"temperature", 40}, {"humidity", 50}, {"radiation", 3}}));
  ASSERT_TRUE(eventually([&] { return client.deliveries() == kSubs; }));
  const std::int64_t after = frames_written(server);

  EXPECT_EQ(after - before, 1)
      << "expected one batched frame for " << kSubs << " deliveries";
  {
    const std::scoped_lock lock(mutex);
    EXPECT_EQ(seen.size(), kSubs);
  }

  client.close();
  server.stop();
  EXPECT_EQ(server.first_error(), "");
}

TEST(DeliveryBatching, CapOfOneKeepsLegacyPerDeliveryFrames) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  ServerOptions options;
  options.delivery_batch_max = 1;
  BrokerServer server(broker, options);
  server.start();

  RemoteBrokerClient client("127.0.0.1", server.port());
  constexpr std::size_t kSubs = 7;
  for (std::size_t s = 0; s < kSubs; ++s) {
    client.subscribe("temperature >= " + std::to_string(10 + s),
                     [](const Notification&) {});
  }
  client.flush();

  const std::int64_t before = frames_written(server);
  broker.publish(Event::from_pairs(
      schema, {{"temperature", 40}, {"humidity", 50}, {"radiation", 3}}));
  ASSERT_TRUE(eventually([&] { return client.deliveries() == kSubs; }));
  const std::int64_t after = frames_written(server);

  EXPECT_EQ(after - before, static_cast<std::int64_t>(kSubs));

  client.close();
  server.stop();
  EXPECT_EQ(server.first_error(), "");
}

TEST(DeliveryBatching, BatchesInterleaveCleanlyWithTheFlushBarrier) {
  // A burst of publishes through the client: every delivery must arrive
  // before the matching kFlushDone, whether it rode a batch or not, and
  // none may be lost or duplicated by the staging.
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);
  BrokerServer server(broker);
  server.start();

  RemoteBrokerClient client("127.0.0.1", server.port());
  std::mutex mutex;
  std::vector<Timestamp> seen;
  client.subscribe("temperature >= 35", [&](const Notification& n) {
    const std::scoped_lock lock(mutex);
    seen.push_back(n.event.time());
  });

  constexpr int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) {
    client.publish("temperature = 40; humidity = 5; radiation = 1", i + 1);
  }
  client.flush();

  {
    const std::scoped_lock lock(mutex);
    ASSERT_EQ(seen.size(), static_cast<std::size_t>(kEvents));
    for (int i = 0; i < kEvents; ++i) {
      EXPECT_EQ(seen[static_cast<std::size_t>(i)], i + 1);
    }
  }

  client.close();
  server.stop();
  EXPECT_EQ(server.first_error(), "");
}

TEST(DeliveryBatching, MeshModeStreamsBatchedDeliveries) {
  // Socket client at node 1 of a running mesh, publisher at node 0: the
  // deliveries cross the mesh as kEventBatch link frames and reach the
  // client as kDeliveryBatch frames, with the node broker's drain hook
  // closing each mesh worker round.
  const SchemaPtr schema = testutil::example1_schema();
  mesh::MeshNetwork mesh(schema, mesh::MeshOptions{});
  mesh.add_node();
  mesh.add_node();
  mesh.connect(0, 1);
  mesh.start();

  BrokerServer server(mesh, 1);
  server.start();

  RemoteBrokerClient client("127.0.0.1", server.port());
  std::mutex mutex;
  std::vector<Timestamp> seen;
  client.subscribe("temperature >= 35", [&](const Notification& n) {
    const std::scoped_lock lock(mutex);
    seen.push_back(n.event.time());
  });
  client.flush();

  constexpr std::size_t kEvents = 120;
  std::vector<Event> events;
  events.reserve(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    events.push_back(Event::from_pairs(
        schema, {{"temperature", 40}, {"humidity", 50}, {"radiation", 3}},
        static_cast<Timestamp>(i + 1)));
  }
  mesh.publish_batch(0, std::move(events));
  mesh.wait_idle();

  ASSERT_TRUE(eventually([&] { return client.deliveries() == kEvents; }));
  {
    const std::scoped_lock lock(mutex);
    ASSERT_EQ(seen.size(), kEvents);
    for (std::size_t i = 0; i < kEvents; ++i) {
      EXPECT_EQ(seen[i], static_cast<Timestamp>(i + 1));
    }
  }

  client.close();
  server.stop();
  EXPECT_EQ(server.first_error(), "");
  EXPECT_EQ(mesh.first_error(), "");
  mesh.shutdown();
}

}  // namespace
}  // namespace genas
