// Tests for the adaptive controller: drift detection, cooldown, rebuilds.
#include <gtest/gtest.h>

#include "core/adaptive_filter.hpp"
#include "dist/sampler.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

SchemaPtr schema2() {
  return SchemaBuilder()
      .add_integer("x", 0, 19)
      .add_integer("y", 0, 19)
      .build();
}

using testutil::event_stream;
using testutil::peak_joint;

TEST(AdaptiveController, NoRebuildBeforeMinObservations) {
  const SchemaPtr schema = schema2();
  AdaptiveOptions options;
  options.min_observations = 100;
  AdaptiveController controller(schema, options);
  const auto stream = event_stream(peak_joint(schema, false), 100, 1);
  for (int i = 0; i < 99; ++i) controller.observe(stream[i]);
  EXPECT_FALSE(controller.should_rebuild());
  controller.observe(stream[99]);
  EXPECT_TRUE(controller.should_rebuild());  // no baseline yet
}

TEST(AdaptiveController, DriftTriggersRebuildAfterRegimeChange) {
  const SchemaPtr schema = schema2();
  AdaptiveOptions options;
  options.min_observations = 200;
  options.rebuild_cooldown = 200;
  options.drift_threshold = 0.5;
  options.decay = 0.995;  // forget the old regime
  AdaptiveController controller(schema, options);

  for (const Event& e : event_stream(peak_joint(schema, false), 500, 1)) {
    controller.observe(e);
  }
  controller.mark_rebuilt(controller.estimate());
  EXPECT_LT(controller.drift(), 0.2);
  EXPECT_FALSE(controller.should_rebuild());

  // Regime change: mass moves to the other end of x.
  for (const Event& e : event_stream(peak_joint(schema, true), 1500, 2)) {
    controller.observe(e);
  }
  EXPECT_GT(controller.drift(), 0.5);
  EXPECT_TRUE(controller.should_rebuild());

  controller.mark_rebuilt(controller.estimate());
  EXPECT_EQ(controller.rebuilds(), 2u);
  EXPECT_FALSE(controller.should_rebuild());  // cooldown + low drift
}

TEST(AdaptiveController, CooldownSuppressesThrashing) {
  const SchemaPtr schema = schema2();
  AdaptiveOptions options;
  options.min_observations = 10;
  options.rebuild_cooldown = 1000;
  options.drift_threshold = 0.0;  // always "drifted"
  AdaptiveController controller(schema, options);
  const auto stream = event_stream(peak_joint(schema, false), 550, 3);
  for (int i = 0; i < 50; ++i) controller.observe(stream[i]);
  controller.mark_rebuilt(controller.estimate());
  for (int i = 50; i < 550; ++i) controller.observe(stream[i]);
  EXPECT_FALSE(controller.should_rebuild()) << "cooldown must hold";
}

TEST(AdaptiveController, EstimateTracksObservedMarginals) {
  const SchemaPtr schema = schema2();
  AdaptiveController controller(schema, {});
  for (const Event& e : event_stream(peak_joint(schema, true), 3000, 4)) {
    controller.observe(e);
  }
  const JointDistribution estimate = controller.estimate();
  EXPECT_GT(estimate.marginal(0).mass(Interval{16, 19}), 0.8);
  EXPECT_EQ(controller.observations(), 3000u);
}

}  // namespace
}  // namespace genas
