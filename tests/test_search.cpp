// Tests for the node search-cost models, pinned to the paper's worked
// examples (Example 5 for the lookup-table early stop, Example 2 for the
// event-order and binary costs).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tree/search.hpp"

namespace genas {
namespace {

/// Example 2's cell structure in index space (temperature domain [-30,50]
/// mapped to [0,80]): x1=[0,10], x0=[11,59] (zero), x2=[60,64], x3=[65,80].
CellLayout example2_layout(const std::vector<double>& keys) {
  CellLayout layout;
  layout.cells = {{0, 10}, {11, 59}, {60, 64}, {65, 80}};
  layout.is_edge = {true, false, true, true};
  layout.order_key = keys;
  return layout;
}

TEST(SearchLinear, Example5LookupTableEarlyStop) {
  // Domain {a..f} as point cells; defined order f,c,a,b,e,d; the tree node
  // contains f,c,b,e,d ('a' is missing). Searching 'a' stops at 'b' after
  // 3 comparisons (paper §4.2, Example 5).
  CellLayout layout;
  layout.cells = {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}};
  layout.is_edge = {false, true, true, true, true, true};  // 'a' missing
  // Keys realizing the defined order f > c > a > b > e > d.
  layout.order_key = {4, 3, 5, 1, 2, 6};

  const CellCosts costs = plan_costs(layout, SearchStrategy::kLinear);
  EXPECT_EQ(costs.cost[5], 1u);  // f found first
  EXPECT_EQ(costs.cost[2], 2u);  // c second
  EXPECT_EQ(costs.cost[1], 3u);  // b third
  EXPECT_EQ(costs.cost[4], 4u);  // e fourth
  EXPECT_EQ(costs.cost[3], 5u);  // d last
  EXPECT_EQ(costs.cost[0], 3u);  // 'a': scan f, c, stop at b
  EXPECT_EQ(costs.scan_rank[5], 1u);
  EXPECT_EQ(costs.scan_rank[0], 0u);  // gaps have no rank
}

TEST(SearchLinear, Example2EventOrderCosts) {
  // V1 keys = P_e: x1=0.02, x0=0.17, x2=0.01, x3=0.80.
  const CellCosts costs =
      plan_costs(example2_layout({0.02, 0.17, 0.01, 0.80}),
                 SearchStrategy::kLinear);
  EXPECT_EQ(costs.cost[3], 1u);  // x3, scanned first
  EXPECT_EQ(costs.cost[0], 2u);  // x1
  EXPECT_EQ(costs.cost[2], 3u);  // x2
  EXPECT_EQ(costs.cost[1], 2u);  // x0 miss: scan x3, stop at x1 -> r0 = 2
}

TEST(SearchLinear, Example2NaturalOrderCosts) {
  const CellCosts costs =
      plan_costs(example2_layout({0, 0, 0, 0}), SearchStrategy::kLinear);
  EXPECT_EQ(costs.cost[0], 1u);  // x1 first in natural order
  EXPECT_EQ(costs.cost[2], 2u);
  EXPECT_EQ(costs.cost[3], 3u);
  EXPECT_EQ(costs.cost[1], 2u);  // miss after x1, stop at x2
}

TEST(SearchLinear, MissAfterAllEdgesScansWholeList) {
  CellLayout layout;
  layout.cells = {{0, 4}, {5, 9}};
  layout.is_edge = {true, false};
  layout.order_key = {1.0, 0.5};
  const CellCosts costs = plan_costs(layout, SearchStrategy::kLinear);
  // The gap's position is after the single edge: cost capped at edge count.
  EXPECT_EQ(costs.cost[1], 1u);
}

TEST(SearchBinary, Example2BinaryCosts) {
  const CellCosts costs =
      plan_costs(example2_layout({0, 0, 0, 0}), SearchStrategy::kBinary);
  EXPECT_EQ(costs.cost[2], 1u);  // x2 is the middle edge
  EXPECT_EQ(costs.cost[0], 2u);  // x1
  EXPECT_EQ(costs.cost[3], 2u);  // x3
  EXPECT_EQ(costs.cost[1], 2u);  // x0 miss: r0 = 2 = ~log2(2p-1)
}

TEST(SearchBinary, SingleEdgeCostsOneEverywhere) {
  CellLayout layout;
  layout.cells = {{0, 4}, {5, 9}};
  layout.is_edge = {false, true};
  layout.order_key = {0, 0};
  const CellCosts costs = plan_costs(layout, SearchStrategy::kBinary);
  EXPECT_EQ(costs.cost[0], 1u);
  EXPECT_EQ(costs.cost[1], 1u);
}

TEST(SearchBinary, CostIsLogarithmic) {
  // 127 point edges: every lookup must finish within 7 probes.
  CellLayout layout;
  for (DomainIndex v = 0; v < 127; ++v) {
    layout.cells.push_back(Interval::point(v));
    layout.is_edge.push_back(true);
    layout.order_key.push_back(0.0);
  }
  const CellCosts costs = plan_costs(layout, SearchStrategy::kBinary);
  for (const auto c : costs.cost) {
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, 7u);
  }
}

TEST(SearchInterpolation, FindsEveryEdgeOnUniformSpacing) {
  CellLayout layout;
  for (DomainIndex v = 0; v < 32; ++v) {
    layout.cells.push_back(Interval::point(v));
    layout.is_edge.push_back(v % 2 == 0);
    layout.order_key.push_back(0.0);
  }
  const CellCosts costs = plan_costs(layout, SearchStrategy::kInterpolation);
  for (std::size_t i = 0; i < layout.cells.size(); ++i) {
    EXPECT_GE(costs.cost[i], 1u);
    EXPECT_LE(costs.cost[i], 16u);
  }
  // Uniformly spaced keys: interpolation lands on target nearly directly.
  EXPECT_LE(costs.cost[16], 2u);
}

TEST(SearchHash, EveryCellCostsOne) {
  const CellCosts costs =
      plan_costs(example2_layout({0, 0, 0, 0}), SearchStrategy::kHash);
  for (const auto c : costs.cost) EXPECT_EQ(c, 1u);
}

TEST(Search, ValidatesLayout) {
  CellLayout bad;
  bad.cells = {{0, 4}, {6, 9}};  // hole between 4 and 6
  bad.is_edge = {true, true};
  bad.order_key = {0, 0};
  EXPECT_THROW(plan_costs(bad, SearchStrategy::kLinear), Error);

  CellLayout mismatched;
  mismatched.cells = {{0, 9}};
  mismatched.is_edge = {true, false};
  mismatched.order_key = {0};
  EXPECT_THROW(plan_costs(mismatched, SearchStrategy::kLinear), Error);
}

TEST(Search, StrategyNames) {
  EXPECT_EQ(to_string(SearchStrategy::kLinear), "linear");
  EXPECT_EQ(to_string(SearchStrategy::kBinary), "binary");
  EXPECT_EQ(to_string(SearchStrategy::kInterpolation), "interpolation");
  EXPECT_EQ(to_string(SearchStrategy::kHash), "hash");
}

}  // namespace
}  // namespace genas
