// Tests for service-configuration persistence (save/load round-trips).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ens/config_io.hpp"
#include "sim/workload.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

TEST(ConfigIo, RoundTripsSchemaAndProfiles) {
  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("temperature", -30, 50)
                               .add_real("pressure", 0.0, 2.0, 0.5)
                               .add_categorical("state", {"ok", "warn"})
                               .build();
  ProfileSet set(schema);
  const ProfileId a = set.add(
      ProfileBuilder(schema).where("temperature", Op::kGe, 35).build());
  set.add(ProfileBuilder(schema).where("state", Op::kEq, "warn").build());
  set.add(ProfileBuilder(schema)
              .between("temperature", -30, -20)
              .where("pressure", Op::kLe, 1.0)
              .build());
  set.set_weight(a, 2.5);

  const std::string text = config_to_string(set);
  const ServiceConfig restored = config_from_string(text);

  EXPECT_EQ(restored.schema->attribute_count(), 3u);
  EXPECT_EQ(restored.schema->attribute(0).domain.size(), 81);
  EXPECT_EQ(restored.schema->attribute(1).domain.size(), 5);
  EXPECT_EQ(restored.schema->attribute(2).domain.size(), 2);
  ASSERT_EQ(restored.profiles.active_count(), 3u);
  EXPECT_DOUBLE_EQ(restored.profiles.weight(0), 2.5);
  EXPECT_DOUBLE_EQ(restored.profiles.weight(1), 1.0);

  // Semantics: each restored profile accepts the same index sets.
  for (const ProfileId id : set.active_ids()) {
    for (AttributeId attr = 0; attr < 3; ++attr) {
      const Predicate* original = set.profile(id).predicate(attr);
      const Predicate* loaded = restored.profiles.profile(id).predicate(attr);
      ASSERT_EQ(original == nullptr, loaded == nullptr);
      if (original != nullptr) {
        EXPECT_EQ(original->accepted(), loaded->accepted());
      }
    }
  }
}

TEST(ConfigIo, RandomWorkloadRoundTrips) {
  const SchemaPtr schema = SchemaBuilder()
                               .add_integer("a", 0, 63)
                               .add_integer("b", -10, 10)
                               .build();
  ProfileWorkloadOptions options;
  options.count = 40;
  options.dont_care_probability = 0.3;
  options.equality_only = false;
  options.range_width_mean = 0.2;
  options.seed = 5;
  const ProfileSet set = generate_profiles(
      schema, make_profile_distributions(schema, {"gauss"}), options);

  const ServiceConfig restored = config_from_string(config_to_string(set));
  ASSERT_EQ(restored.profiles.active_count(), set.active_count());
  const ServiceConfig twice =
      config_from_string(config_to_string(restored.profiles));
  EXPECT_EQ(config_to_string(restored.profiles),
            config_to_string(twice.profiles));  // fixpoint after one trip
}

TEST(ConfigIo, CommentsAndBlankLinesIgnored) {
  const ServiceConfig config = config_from_string(
      "# header\n"
      "\n"
      "attr x int 0 9\n"
      "  # indented comment\n"
      "profile x >= 5\n");
  EXPECT_EQ(config.profiles.active_count(), 1u);
}

TEST(ConfigIo, ParseFailuresCarryLineNumbers) {
  const auto expect_fail = [](const std::string& text,
                              const std::string& fragment) {
    try {
      config_from_string(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse);
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_fail("attr x int 0\n", "line 1");
  expect_fail("attr x bogus 0 9\n", "line 1");
  expect_fail("attr x int 0 9\nwhatever\n", "line 2");
  expect_fail("attr x int 0 9\nprofile y >= 1\n", "line 2");
  expect_fail("profile x >= 1\n", "precede");
  expect_fail("", "no attributes");
  expect_fail("attr x int 0 9\nprofile weight=0 x >= 1\n", "line 2");
}

TEST(ConfigIo, CategoryNamesWithCommasAndEdgeWhitespaceRoundTrip) {
  // Regression: commas used to split the category payload blindly, and
  // leading/trailing whitespace was eaten by line trimming — both silently
  // corrupted the restored domain. Escaping must make these round-trip.
  const std::vector<std::string> names = {
      "plain",
      "with,comma",
      ",leading",
      "trailing,",
      " leading space",
      "trailing space ",
      "\ttab edge\t",
      "inner space ok",
      "back\\slash",
      "\\,messy\\ mix, ",
  };
  const SchemaPtr schema =
      SchemaBuilder().add_categorical("state", names).build();
  ProfileSet set(schema);
  set.add(ProfileBuilder(schema).where("state", Op::kEq, "with,comma").build());

  const std::string text = config_to_string(set);
  const ServiceConfig restored = config_from_string(text);
  const Domain& domain = restored.schema->attribute(0).domain;
  ASSERT_EQ(domain.size(), static_cast<std::int64_t>(names.size()));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(domain.value_at(static_cast<DomainIndex>(i)).as_category(),
              names[i])
        << "category " << i;
  }
  // And a second trip is a fixpoint.
  EXPECT_EQ(config_to_string(restored.profiles), text);
}

TEST(ConfigIo, HandWrittenCategoryListsStillTolerateSpacing) {
  // Unescaped whitespace around commas is formatting, not payload.
  const ServiceConfig config = config_from_string(
      "attr state cat ok, warn ,  err\n"
      "profile state = warn\n");
  const Domain& domain = config.schema->attribute(0).domain;
  ASSERT_EQ(domain.size(), 3);
  EXPECT_EQ(domain.value_at(0).as_category(), "ok");
  EXPECT_EQ(domain.value_at(1).as_category(), "warn");
  EXPECT_EQ(domain.value_at(2).as_category(), "err");
}

TEST(ConfigIo, CategoryEscapeFailuresAreRejected) {
  const auto expect_parse_fail = [](const std::string& text) {
    try {
      config_from_string(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse) << e.what();
    }
  };
  expect_parse_fail("attr state cat ok,bad\\\n");    // lone trailing backslash
  expect_parse_fail("attr state cat ok,bad\\x\n");   // unknown escape

  // Newlines cannot exist in a line-oriented format: save must refuse.
  const SchemaPtr schema =
      SchemaBuilder().add_categorical("state", {"multi\nline"}).build();
  const ProfileSet set(schema);
  try {
    config_to_string(set);
    FAIL() << "expected save failure for newline category";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument) << e.what();
  }
}

TEST(ConfigIo, Example1ConfigurationRoundTrips) {
  const SchemaPtr schema = testutil::example1_schema();
  const ProfileSet set = testutil::example1_profiles(schema);
  const ServiceConfig restored = config_from_string(config_to_string(set));
  ASSERT_EQ(restored.profiles.active_count(), 5u);
  // The paper's event (30, 90, 2) must still match exactly P2 and P5.
  const Event event =
      Event::from_pairs(restored.schema, {{"temperature", 30},
                                          {"humidity", 90},
                                          {"radiation", 2}});
  std::vector<ProfileId> matched;
  for (const ProfileId id : restored.profiles.active_ids()) {
    if (restored.profiles.profile(id).matches(event)) matched.push_back(id);
  }
  EXPECT_EQ(matched, (std::vector<ProfileId>{1, 4}));
}

}  // namespace
}  // namespace genas
