// Multithreaded broker stress: publisher threads race subscribe/unsubscribe
// churn and assert the snapshot semantics the threading model promises —
// no lost and no duplicated notifications for subscriptions that are stable
// across a publish, consistent atomic counters, and quiescence after an
// unsubscribe has been observed. Run under -fsanitize=thread in CI (the
// GENAS_SANITIZE=thread configuration) to verify data-race freedom.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "ens/broker.hpp"
#include "test_util.hpp"

namespace genas {
namespace {

constexpr int kPublishers = 4;
constexpr int kEventsPerPublisher = 400;

TEST(BrokerStress, NoLostOrDuplicatedNotificationsUnderChurn) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);

  // Stable subscription: matches every event, so it must see exactly one
  // notification per publish — a lost delivery undercounts, a duplicated
  // one overcounts. Per-slot flags catch duplicates of individual events.
  std::atomic<std::uint64_t> stable_notifications{0};
  std::vector<std::atomic<int>> seen(
      static_cast<std::size_t>(kPublishers) * kEventsPerPublisher);
  const SubscriptionId stable = broker.subscribe(
      "temperature >= -30", [&](const Notification& n) {
        stable_notifications.fetch_add(1, std::memory_order_relaxed);
        seen[static_cast<std::size_t>(n.event.time())].fetch_add(
            1, std::memory_order_relaxed);
      });

  // Churn subscription: repeatedly subscribed and unsubscribed while the
  // publishers run; deliveries may race the unsubscribe (documented), but
  // the broker must never crash, deadlock, or misroute.
  std::atomic<std::uint64_t> churn_notifications{0};
  std::atomic<bool> stop{false};

  std::barrier start(kPublishers + 1);
  std::vector<std::thread> publishers;
  publishers.reserve(kPublishers);
  for (int t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kEventsPerPublisher; ++i) {
        const Timestamp id = static_cast<Timestamp>(t) * kEventsPerPublisher + i;
        Event event = Event::from_pairs(
            schema,
            {{"temperature", (i * 7) % 81 - 30},
             {"humidity", (t * 31 + i) % 101},
             {"radiation", 1 + (i % 100)}},
            id);
        broker.publish(event);
      }
    });
  }

  std::thread churn([&] {
    start.arrive_and_wait();
    while (!stop.load(std::memory_order_relaxed)) {
      const SubscriptionId id = broker.subscribe(
          "humidity >= 50", [&](const Notification&) {
            churn_notifications.fetch_add(1, std::memory_order_relaxed);
          });
      broker.unsubscribe(id);
    }
  });

  for (std::thread& publisher : publishers) publisher.join();
  stop.store(true, std::memory_order_relaxed);
  churn.join();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kPublishers) * kEventsPerPublisher;
  EXPECT_EQ(stable_notifications.load(), kTotal);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "event " << i << " lost or duplicated";
  }
  EXPECT_EQ(broker.counters().events_published, kTotal);
  EXPECT_EQ(broker.counters().events_matched, kTotal);

  // Quiescence: after every mutator and publisher has joined, one further
  // publish must deliver to the stable subscription only.
  const std::uint64_t churned = churn_notifications.load();
  const PublishResult quiesced =
      broker.publish("temperature = 0; humidity = 99; radiation = 1");
  EXPECT_EQ(quiesced.notified, 1u);
  EXPECT_EQ(churn_notifications.load(), churned);

  broker.unsubscribe(stable);
  EXPECT_EQ(broker.subscription_count(), 0u);
}

TEST(BrokerStress, ConcurrentBatchAndSinglePublishersAgree) {
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);

  std::atomic<std::uint64_t> notified{0};
  broker.subscribe("radiation >= 1",
                   [&](const Notification&) { notified.fetch_add(1); });

  const JointDistribution joint = testutil::peak_joint(schema, true);
  const std::vector<Event> batch = testutil::event_stream(joint, 256, 5);

  constexpr int kThreads = 4;
  std::barrier start(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      if (t % 2 == 0) {
        const BatchPublishResult result = broker.publish_batch(batch);
        EXPECT_EQ(result.notified, batch.size());
      } else {
        for (const Event& event : batch) {
          EXPECT_EQ(broker.publish(event).notified, 1u);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * batch.size();
  EXPECT_EQ(notified.load(), expected);
  EXPECT_EQ(broker.counters().notifications, expected);
  EXPECT_EQ(broker.counters().events_published, expected);
}

TEST(BrokerStress, SubscribersArrivingMidStreamSeeOnlyLaterEvents) {
  // A subscription created after a publish returns must never have seen
  // that publish; one created before a publish starts must see it. The
  // gray zone is only the true race window.
  const SchemaPtr schema = testutil::example1_schema();
  Broker broker(schema);

  std::atomic<int> early_count{0};
  broker.subscribe("temperature >= -30",
                   [&](const Notification&) { early_count.fetch_add(1); });

  std::atomic<bool> go{false};
  std::atomic<bool> done{false};
  std::thread publisher([&] {
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < 200; ++i) {
      broker.publish("temperature = 10; humidity = 5; radiation = 1");
    }
    done.store(true);
  });

  go.store(true);
  // Subscribe while the publisher runs; count only post-subscribe events.
  std::atomic<int> late_count{0};
  broker.subscribe("temperature >= -30",
                   [&](const Notification&) { late_count.fetch_add(1); });
  publisher.join();

  // The late subscriber saw at most the events published after it joined.
  EXPECT_LE(late_count.load(), early_count.load());
  EXPECT_EQ(early_count.load(), 200);

  // And it reliably sees everything from now on.
  broker.publish("temperature = 0; humidity = 0; radiation = 1");
  EXPECT_GE(late_count.load(), 1);
}

}  // namespace
}  // namespace genas
