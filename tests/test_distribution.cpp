// Unit and property tests for DiscreteDistribution and the shape library.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dist/distribution.hpp"
#include "dist/shapes.hpp"

namespace genas {
namespace {

TEST(DiscreteDistribution, NormalizesWeights) {
  const auto d = DiscreteDistribution::from_weights({1, 3, 4});
  EXPECT_DOUBLE_EQ(d.pmf(0), 0.125);
  EXPECT_DOUBLE_EQ(d.pmf(1), 0.375);
  EXPECT_DOUBLE_EQ(d.pmf(2), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(2), 1.0);
}

TEST(DiscreteDistribution, ConstructionValidation) {
  EXPECT_THROW(DiscreteDistribution::from_weights({}), Error);
  EXPECT_THROW(DiscreteDistribution::from_weights({0, 0}), Error);
  EXPECT_THROW(DiscreteDistribution::from_weights({1, -1}), Error);
  EXPECT_THROW(DiscreteDistribution::uniform(0), Error);
}

TEST(DiscreteDistribution, MassOverIntervalsAndSets) {
  const auto d = DiscreteDistribution::from_weights({1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(d.mass(Interval{0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(d.mass(Interval{0, 3}), 1.0);
  EXPECT_DOUBLE_EQ(d.mass(Interval{2, 9}), 0.5);   // clipped
  EXPECT_DOUBLE_EQ(d.mass(Interval{}), 0.0);       // empty
  EXPECT_DOUBLE_EQ(d.mass(IntervalSet({{0, 0}, {3, 3}})), 0.5);
}

TEST(DiscreteDistribution, QuantileInvertsCdf) {
  const auto d = DiscreteDistribution::from_weights({1, 0, 3});
  EXPECT_EQ(d.quantile(0.0), 0);
  EXPECT_EQ(d.quantile(0.2), 0);
  EXPECT_EQ(d.quantile(0.26), 2);
  EXPECT_EQ(d.quantile(0.999), 2);
}

TEST(DiscreteDistribution, L1DistanceAndMix) {
  const auto a = DiscreteDistribution::from_weights({1, 0});
  const auto b = DiscreteDistribution::from_weights({0, 1});
  EXPECT_DOUBLE_EQ(DiscreteDistribution::l1_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(DiscreteDistribution::l1_distance(a, b), 2.0);
  const auto m = a.mix(b, 0.5);
  EXPECT_DOUBLE_EQ(m.pmf(0), 0.5);
  EXPECT_THROW(a.mix(DiscreteDistribution::uniform(3), 0.5), Error);
  EXPECT_THROW(a.mix(b, 1.5), Error);
}

TEST(DiscreteDistribution, MeanIndex) {
  const auto d = DiscreteDistribution::from_weights({0, 0, 1});
  EXPECT_DOUBLE_EQ(d.mean_index(), 2.0);
}

// Shape sweep: every shape must be a proper distribution on any size.
class ShapeNormalization : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ShapeNormalization, AllShapesSumToOne) {
  const std::int64_t d = GetParam();
  const std::vector<DiscreteDistribution> all = {
      shapes::equal(d),
      shapes::gauss(d),
      shapes::relocated_gauss(d, true),
      shapes::relocated_gauss(d, false),
      shapes::falling(d),
      shapes::rising(d),
      shapes::peak(d, 0.9, 0.05, 0.95),
      shapes::percent_peak(d, 0.9, false),
      shapes::multi_peak(d, {{0.2, 0.1, 1.0}, {0.8, 0.05, 0.5}}, 0.1),
      shapes::steps(d, {1, 5, 2}),
  };
  for (const auto& dist : all) {
    ASSERT_EQ(dist.size(), d);
    double total = 0.0;
    for (DomainIndex i = 0; i < d; ++i) {
      ASSERT_GE(dist.pmf(i), 0.0);
      total += dist.pmf(i);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShapeNormalization,
                         ::testing::Values<std::int64_t>(1, 2, 7, 100, 1000));

TEST(Shapes, GaussIsCentredAndSymmetric) {
  const auto g = shapes::gauss(101, 0.5, 0.1);
  EXPECT_GT(g.pmf(50), g.pmf(30));
  EXPECT_NEAR(g.pmf(40), g.pmf(60), 1e-9);
}

TEST(Shapes, RelocatedGaussShiftsMass) {
  const auto low = shapes::relocated_gauss(100, false);
  const auto high = shapes::relocated_gauss(100, true);
  EXPECT_GT(low.mass(Interval{0, 49}), 0.8);
  EXPECT_GT(high.mass(Interval{50, 99}), 0.8);
}

TEST(Shapes, FallingAndRisingAreMonotone) {
  const auto f = shapes::falling(50);
  const auto r = shapes::rising(50);
  for (DomainIndex i = 1; i < 50; ++i) {
    EXPECT_LE(f.pmf(i), f.pmf(i - 1) + 1e-12);
    EXPECT_GE(r.pmf(i), r.pmf(i - 1) - 1e-12);
  }
}

TEST(Shapes, PeakCarriesRequestedMass) {
  // "95% high": 95% of the mass within the top 5% band.
  const auto p = shapes::percent_peak(200, 0.95, true, 0.05);
  EXPECT_NEAR(p.mass(Interval{190, 199}), 0.95, 1e-9);
  const auto q = shapes::percent_peak(200, 0.90, false, 0.05);
  EXPECT_NEAR(q.mass(Interval{0, 9}), 0.90, 1e-9);
}

TEST(Shapes, PeakNarrowerThanBucketDegeneratesToPoint) {
  const auto p = shapes::peak(4, 0.5, 0.01, 0.7);
  double total = 0;
  for (DomainIndex i = 0; i < 4; ++i) total += p.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(p.pmf(2), 0.7, 1e-9);
}

TEST(Shapes, Validation) {
  EXPECT_THROW(shapes::gauss(10, 0.5, 0.0), Error);
  EXPECT_THROW(shapes::peak(10, 0.5, 0.0, 0.5), Error);
  EXPECT_THROW(shapes::peak(10, 0.5, 0.1, 1.5), Error);
  EXPECT_THROW(shapes::multi_peak(10, {}, 0.0), Error);
  EXPECT_THROW(shapes::steps(10, {}), Error);
}

}  // namespace
}  // namespace genas
